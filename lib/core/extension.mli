(** The database customizer's (DBC's) interface: every extension point
    Corona and Core expose, in one place.

    A DBC may add — without touching base-system code — new column
    datatypes; scalar / aggregate / set-predicate / table functions;
    storage managers and access-method kinds (Core attachments,
    including integrity constraints); query-rewrite rules; optimizer
    STAR alternatives and index probe matchers; QES join kinds and
    SELECT-box plan handlers; and new table operations in the language. *)

open Sb_storage
module Functions = Sb_hydrogen.Functions
module Rule = Sb_rewrite.Rule
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
module Exec = Sb_qes.Exec

type t = Corona.t

(** {1 Language extensions} *)

val register_datatype : t -> Datatype.ext_ops -> unit
val register_scalar_function : t -> Functions.scalar_fn -> unit
val register_aggregate_function : t -> Functions.aggregate_fn -> unit
val register_set_predicate : t -> Functions.set_predicate_fn -> unit
val register_table_function : t -> Functions.table_fn -> unit

(** Enables an extension table operation in the language (e.g.
    ["left_outer_join"]); the builder refuses the syntax until then. *)
val enable_operation : t -> string -> unit

(** {1 Data management extensions (Core attachments)} *)

val register_storage_manager : t -> Storage_manager.factory -> unit
val register_access_method : t -> Access_method.kind -> unit

(** Assigns tables to (simulated) sites; the optimizer inserts SHIP
    operators and charges network cost for cross-site access. *)
val set_site_map : t -> (string -> string) -> unit

(** {1 Query rewrite extensions} *)

val register_rewrite_rule : t -> Rule.t -> unit

(** Registers a declarative ({!Sb_ruledsl.Dsl}) rewrite rule through the
    static verifier; returns the verification status ([Verified], or
    [Conditional] with runtime guards auto-inserted).
    @raise Corona.Error when the verifier rejects the rule. *)
val register_dsl_rewrite_rule :
  t -> Sb_ruledsl.Dsl.rule -> Sb_ruledsl.Verify.status

val rewrite_rule_classes : t -> string list

(** {1 Optimizer extensions} *)

(** Adds alternatives to an existing STAR, or creates a new one. *)
val register_star : t -> string -> Star.alternative list -> unit

val register_probe_matcher : t -> Star.probe_matcher -> unit

(** A handler consulted for SELECT boxes containing extension
    setformers (e.g. PF); the first handler returning a plan wins. *)
val register_select_handler :
  t -> (Generator.t -> Generator.env -> Sb_qgm.Qgm.t -> Sb_qgm.Qgm.box -> Sb_optimizer.Plan.plan option) -> unit

(** {1 QES extensions} *)

val register_join_kind : t -> string -> Exec.kind_impl -> unit
