(** Query evaluation plans: trees of LOLEPOPs (LOw-LEvel Plan OPerators,
    section 6) over streams of tuples, plus the runtime expression
    language they evaluate.

    Each LOLEPOP "is expressed as a function that operates on 0 or more
    streams of tuples, and produces 0 or more new streams"; a plan is a
    nesting of such invocations.  Properties (relational / operational /
    estimated) summarize each plan's output table and are updated by
    each operator's property function (in {!Cost}). *)

open Sb_storage
module Ast = Sb_hydrogen.Ast

(** Join {e methods} are control structures, join {e kinds} are the
    functions performed during the join (section 7); the two compose,
    though not every method suits every kind. *)
type join_method = Nested_loop | Sort_merge | Hash_join

type join_kind =
  | J_regular
  | J_exists  (** semi-join: emit outer when some inner matches *)
  | J_all  (** op-ALL join: emit outer when predicate holds for all inner *)
  | J_scalar  (** scalar-subquery join: append the single inner value *)
  | J_set_pred of string  (** DBC set-predicate function, e.g. majority *)
  | J_ext of string  (** extension kinds, e.g. "left_outer" *)

val join_kind_name : join_kind -> string
val join_method_name : join_method -> string

(** Runtime expressions, evaluated over a tuple of {e slots} plus bound
    correlation {e parameters}.  [RSub] embeds a whole subplan — the
    uniform mechanism behind residual subquery predicates and the OR
    operator. *)
type rexpr =
  | RLit of Value.t
  | RCol of int  (** slot of the input tuple *)
  | RParam of int  (** correlation parameter *)
  | RHost of string  (** host-language variable, bound at execution *)
  | RBin of Ast.binop * rexpr * rexpr
  | RUn of Ast.unop * rexpr
  | RFun of string * rexpr list
  | RCase of (rexpr * rexpr) list * rexpr option
  | RIs_null of rexpr
  | RLike of rexpr * string
  | RSub of sub_spec  (** quantified subquery as a predicate *)
  | RScalar_sub of scalar_sub_spec  (** scalar subquery as a value *)

and sub_spec = {
  sub_kind : sub_kind;
  sub_plan : plan;
  sub_params : rexpr list;  (** evaluated over the outer tuple *)
  sub_pred : rexpr;
      (** per-inner-row predicate: [RCol] = inner slots, [RParam] = the
          parameters above *)
}

and sub_kind = Sk_exists | Sk_all | Sk_set_pred of string

and scalar_sub_spec = { ssub_plan : plan; ssub_params : rexpr list }

and probe_spec =
  | Pr_eq of rexpr list
  | Pr_range of (rexpr * bool) option * (rexpr * bool) option
  | Pr_custom of string * rexpr list  (** extension probe, e.g. overlaps *)

and op =
  | Scan of {
      sc_table : string;
      sc_cols : int list;  (** base columns kept, in output-slot order *)
      sc_preds : rexpr list;  (** over base column indices (paper's SCAN) *)
    }
  | Idx_access of {
      ix_table : string;
      ix_index : string;
      ix_probe : probe_spec;
      ix_cols : int list;
      ix_preds : rexpr list;  (** residual, applied after fetch *)
    }
  | Idx_and of {
      ia_table : string;
      ia_probes : (string * probe_spec) list;  (** index name, probe *)
      ia_cols : int list;
      ia_preds : rexpr list;
    }
      (** index ANDing (section 6): intersect the rid sets of several
          probes, then fetch each surviving record once *)
  | Filter of rexpr list  (** conjunctive *)
  | Or_filter of rexpr list
      (** the OR operator (section 7): disjuncts evaluated left to
          right; a tuple rejected by one is handed to the next *)
  | Project of rexpr list  (** one expression per output slot *)
  | Sort of (int * Ast.order_dir) list
  | Join of {
      j_method : join_method;
      j_kind : join_kind;
      j_equi : (int * int) list;  (** outer slot, inner slot *)
      j_pred : rexpr option;  (** over the concatenated [outer @ inner] *)
      j_corr : rexpr list;
          (** correlation parameter sources, over outer slots; inner is
              re-evaluated on demand when these change *)
      j_bound : bool;
          (** the inner plan owns its parameter space: its [RParam]s are
              bound positionally from [j_corr] (subquery/lateral joins) *)
      j_kind_pred : rexpr option;
          (** for quantified kinds: per-inner-row truth over
              [outer @ inner] slots *)
    }
  | Group of {
      g_keys : int list;
      g_aggs : (string * bool * int option) list;
          (** name, distinct, argument slot ([None] = count of rows) *)
      g_sorted : bool;  (** input already ordered by the keys *)
    }
  | Distinct_op
  | Union_all
  | Intersect_op of bool  (** ALL? *)
  | Except_op of bool  (** ALL? *)
  | Temp  (** materialize the input stream *)
  | Ship of string  (** move the stream to a site *)
  | Limit_op of int
  | Values_scan of rexpr list list
  | Table_fn_scan of { tf_name : string; tf_args : rexpr list }
  | Bloom_filter of {
      bl_subject_key : int;  (** key slot of input 0 (the filtered side) *)
      bl_source_key : int;  (** key slot of input 1 (the key source) *)
      bl_bits : int;
    }
      (** Bloom-join reduction [MACK86]: pass input-0 rows whose key may
          appear among input 1's keys; a join above re-verifies *)
  | Fixpoint of { fx_distinct : bool }
      (** recursion driver: inputs = [seed; step]; the step contains a
          [Rec_delta] leaf re-bound to the newest delta each round *)
  | Rec_delta of { rd_width : int }
  | Choose_op
      (** runtime CHOOSE (section 5 / [GRAE89]); refinement resolves it *)

and props = {
  (* relational *)
  p_quants : int list;  (** QGM quantifiers covered (sorted) *)
  p_slots : (int * int) array;
      (** provenance of each output slot: [(quant, col)], or [(-1, _)]
          for computed values *)
  (* operational *)
  p_order : (int * Ast.order_dir) list;  (** output order, by slot *)
  p_site : string;
  p_distinct : bool;  (** output known duplicate-free *)
  (* estimated *)
  p_cost : float;  (** cumulative *)
  p_card : float;  (** estimated output rows *)
}

and plan = { op : op; inputs : plan list; props : props }

val width : plan -> int

(** Output slot currently carrying [(quant, col)], if any. *)
val slot_of : plan -> int * int -> int option

val computed_slot : int * int

(** {1 Rexpr utilities} *)

(** Bottom-up rewriting; descends into [RSub]/[RScalar_sub] parameter
    lists but not into their plans or inner predicates (those live in
    their own slot/parameter spaces). *)
val map_rexpr : (rexpr -> rexpr) -> rexpr -> rexpr

val shift_slots : (int -> int) -> rexpr -> rexpr
val fold_rexpr : ('a -> rexpr -> 'a) -> 'a -> rexpr -> 'a
val slots_used : rexpr -> int list
val rexpr_has_sub : rexpr -> bool

(** {1 Pretty-printing (EXPLAIN PLAN)} *)

val pp_rexpr : Format.formatter -> rexpr -> unit
val op_name : op -> string
val op_detail : op -> string
val pp : ?indent:int -> Format.formatter -> plan -> unit
val to_string : plan -> string

(** Operator count. *)
val size : plan -> int

(** Whether this operator (not its inputs) has a vectorized
    batch-at-a-time implementation in the QES: scans, filters,
    projections, sorts, hash aggregation, set operations, LIMIT, TEMP,
    SHIP, and hash/merge joins whose inner shares the enclosing
    parameter space.  Nested-loop and parameter-bound joins, streaming
    aggregation, index access, table functions, Bloom filters and the
    recursion operators stay tuple-at-a-time. *)
val batch_capable : plan -> bool

(** Rewrites every runtime expression of a plan in the {e current}
    parameter space: descends through inputs but not into the inner
    plans of parameter-bound joins nor into embedded subplans. *)
val map_plan_rexprs : (rexpr -> rexpr) -> plan -> plan

(** Renumbers correlation parameters: [RParam i] becomes
    [RParam (remap i)]. *)
val renumber_params : (int -> int) -> plan -> plan
