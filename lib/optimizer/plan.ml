(** Query evaluation plans: trees of LOLEPOPs (LOw-LEvel Plan OPerators,
    section 6) over streams of tuples, plus the runtime expression
    language they evaluate.

    Each LOLEPOP "is expressed as a function that operates on 0 or more
    streams of tuples, and produces 0 or more new streams (typically
    one)"; a plan is a nesting of such invocations.  Properties
    (relational / operational / estimated) summarize each plan's output
    table and are updated by each operator's property function (in
    {!Cost}). *)

open Sb_storage
module Ast = Sb_hydrogen.Ast

(** Join {e methods} are control structures, join {e kinds} are the
    functions performed during the join (section 7); the two compose,
    though not every method suits every kind. *)
type join_method = Nested_loop | Sort_merge | Hash_join

type join_kind =
  | J_regular
  | J_exists  (** semi-join: emit outer when some inner matches *)
  | J_all  (** op-ALL join: emit outer when predicate holds for all inner *)
  | J_scalar  (** scalar-subquery join: append the single inner value *)
  | J_set_pred of string  (** DBC set-predicate function, e.g. majority *)
  | J_ext of string  (** extension kinds, e.g. "left_outer" *)

let join_kind_name = function
  | J_regular -> "regular"
  | J_exists -> "exists"
  | J_all -> "all"
  | J_scalar -> "scalar"
  | J_set_pred n -> "set:" ^ n
  | J_ext n -> n

let join_method_name = function
  | Nested_loop -> "NL"
  | Sort_merge -> "MERGE"
  | Hash_join -> "HASH"

(** Runtime expressions, evaluated over a tuple of {e slots} plus bound
    correlation {e parameters}.  [RSub] embeds a whole subplan — the
    uniform mechanism behind residual subquery predicates and the OR
    operator. *)
type rexpr =
  | RLit of Value.t
  | RCol of int  (** slot of the input tuple *)
  | RParam of int  (** correlation parameter *)
  | RHost of string  (** host-language variable, bound at execution *)
  | RBin of Ast.binop * rexpr * rexpr
  | RUn of Ast.unop * rexpr
  | RFun of string * rexpr list
  | RCase of (rexpr * rexpr) list * rexpr option
  | RIs_null of rexpr
  | RLike of rexpr * string
  | RSub of sub_spec  (** quantified subquery as a predicate *)
  | RScalar_sub of scalar_sub_spec  (** scalar subquery as a value *)

and sub_spec = {
  sub_kind : sub_kind;
  sub_plan : plan;
  sub_params : rexpr list;  (** evaluated over the outer tuple *)
  sub_pred : rexpr;
      (** per-inner-row predicate: [RCol] = inner slots, [RParam] = the
          parameters above *)
}

and sub_kind = Sk_exists | Sk_all | Sk_set_pred of string

and scalar_sub_spec = {
  ssub_plan : plan;
  ssub_params : rexpr list;
}

(* --- operators --- *)

and probe_spec =
  | Pr_eq of rexpr list  (** key equality; exprs over params/constants *)
  | Pr_range of (rexpr * bool) option * (rexpr * bool) option
  | Pr_custom of string * rexpr list  (** extension probe, e.g. overlaps *)

and op =
  | Scan of {
      sc_table : string;
      sc_cols : int list;  (** base columns kept, in output-slot order *)
      sc_preds : rexpr list;  (** pushed into the scan (paper's SCAN) *)
    }
  | Idx_access of {
      ix_table : string;
      ix_index : string;
      ix_probe : probe_spec;
      ix_cols : int list;
      ix_preds : rexpr list;  (** residual, applied after fetch *)
    }
  | Idx_and of {
      ia_table : string;
      ia_probes : (string * probe_spec) list;  (** index name, probe *)
      ia_cols : int list;
      ia_preds : rexpr list;  (** residual, applied after fetch *)
    }
      (** index ANDing (section 6): intersect the rid sets of several
          probes, then fetch each surviving record once *)
  | Filter of rexpr list  (** conjunctive *)
  | Or_filter of rexpr list
      (** the OR operator (section 7): disjuncts evaluated left to
          right; a tuple rejected by one is handed to the next *)
  | Project of rexpr list  (** one expression per output slot *)
  | Sort of (int * Ast.order_dir) list
  | Join of {
      j_method : join_method;
      j_kind : join_kind;
      j_equi : (int * int) list;  (** outer slot, inner slot *)
      j_pred : rexpr option;
          (** over concatenated [outer; inner] slots (regular/ext kinds)
              or [outer slots; inner via RParam]… no: always over the
              concatenation of outer and inner slots *)
      j_corr : rexpr list;
          (** correlation parameter sources, over outer slots; inner is
              re-evaluated on demand when these change *)
      j_bound : bool;
          (** the inner plan owns its parameter space: its [RParam]s are
              bound positionally from [j_corr] (subquery joins); when
              false, the inner shares the enclosing parameter space
              (regular joins) *)
      j_kind_pred : rexpr option;
          (** for quantified kinds (exists/all/set): per-inner-row truth,
              over [outer @ inner] slots *)
    }
  | Group of {
      g_keys : int list;
      g_aggs : (string * bool * int option) list;
          (** name, distinct, argument slot ([None] = count of rows) *)
      g_sorted : bool;  (** input already ordered by the keys *)
    }
  | Distinct_op
  | Union_all
  | Intersect_op of bool  (** ALL? *)
  | Except_op of bool  (** ALL? *)
  | Temp  (** materialize the input stream *)
  | Ship of string  (** move the stream to a site *)
  | Limit_op of int
  | Values_scan of rexpr list list
  | Table_fn_scan of { tf_name : string; tf_args : rexpr list }
  | Bloom_filter of {
      bl_subject_key : int;  (** key slot of input 0 (the filtered side) *)
      bl_source_key : int;  (** key slot of input 1 (the key source) *)
      bl_bits : int;
    }
      (** Bloom-join reduction [MACK86]: pass input-0 rows whose key
          {e may} appear among input 1's keys; a join above re-verifies
          (false positives only reduce the saving, never correctness) *)
  | Fixpoint of { fx_distinct : bool }
      (** recursion driver: inputs = [seed; step]; the step contains a
          [Rec_delta] leaf re-bound to the newest delta each round *)
  | Rec_delta of { rd_width : int }
  | Choose_op
      (** runtime CHOOSE (section 5 / [GRAE89]): kept only when the
          optimizer defers the decision; the QES evaluates input 0 *)

(* --- properties --- *)

and props = {
  (* relational *)
  p_quants : int list;  (** QGM quantifiers covered (sorted) *)
  p_slots : (int * int) array;
      (** provenance of each output slot: [(quant, col)], or [(-1, _)]
          for computed values *)
  (* operational *)
  p_order : (int * Ast.order_dir) list;  (** output order, by slot *)
  p_site : string;
  p_distinct : bool;  (** output known duplicate-free *)
  (* estimated *)
  p_cost : float;  (** cumulative *)
  p_card : float;  (** estimated output rows *)
}

and plan = { op : op; inputs : plan list; props : props }

let width (p : plan) = Array.length p.props.p_slots

(** Output slot currently carrying [(quant, col)], if any. *)
let slot_of (p : plan) (quant, col) =
  let found = ref None in
  Array.iteri
    (fun s (q, c) -> if !found = None && q = quant && c = col then found := Some s)
    p.props.p_slots;
  !found

let computed_slot = (-1, 0)

(* ------------------------------------------------------------------ *)
(* Rexpr utilities                                                     *)
(* ------------------------------------------------------------------ *)

let rec map_rexpr f (e : rexpr) : rexpr =
  let e' =
    match e with
    | RLit _ | RCol _ | RParam _ | RHost _ -> e
    | RBin (op, a, b) -> RBin (op, map_rexpr f a, map_rexpr f b)
    | RUn (op, a) -> RUn (op, map_rexpr f a)
    | RFun (n, args) -> RFun (n, List.map (map_rexpr f) args)
    | RCase (arms, els) ->
      RCase
        ( List.map (fun (c, v) -> (map_rexpr f c, map_rexpr f v)) arms,
          Option.map (map_rexpr f) els )
    | RIs_null a -> RIs_null (map_rexpr f a)
    | RLike (a, p) -> RLike (map_rexpr f a, p)
    | RSub s -> RSub { s with sub_params = List.map (map_rexpr f) s.sub_params }
    | RScalar_sub s ->
      RScalar_sub { s with ssub_params = List.map (map_rexpr f) s.ssub_params }
  in
  f e'

(** Remaps slot references (not descending into subplan predicates,
    whose [RCol]s refer to inner slots). *)
let shift_slots shift e =
  map_rexpr (function RCol i -> RCol (shift i) | e -> e) e

let rec fold_rexpr f acc e =
  let acc = f acc e in
  match e with
  | RLit _ | RCol _ | RParam _ | RHost _ -> acc
  | RBin (_, a, b) -> fold_rexpr f (fold_rexpr f acc a) b
  | RUn (_, a) | RIs_null a | RLike (a, _) -> fold_rexpr f acc a
  | RFun (_, args) -> List.fold_left (fold_rexpr f) acc args
  | RCase (arms, els) ->
    let acc =
      List.fold_left (fun acc (c, v) -> fold_rexpr f (fold_rexpr f acc c) v) acc arms
    in
    (match els with Some e -> fold_rexpr f acc e | None -> acc)
  | RSub s -> List.fold_left (fold_rexpr f) acc s.sub_params
  | RScalar_sub s -> List.fold_left (fold_rexpr f) acc s.ssub_params

let slots_used e =
  fold_rexpr (fun acc e -> match e with RCol i -> i :: acc | _ -> acc) [] e
  |> List.sort_uniq Int.compare

let rexpr_has_sub e =
  fold_rexpr
    (fun acc e -> acc || match e with RSub _ | RScalar_sub _ -> true | _ -> false)
    false e

(* ------------------------------------------------------------------ *)
(* Pretty-printing (EXPLAIN PLAN)                                      *)
(* ------------------------------------------------------------------ *)

let rec pp_rexpr ppf = function
  | RLit v -> Fmt.string ppf (Value.to_literal v)
  | RCol i -> Fmt.pf ppf "$%d" i
  | RParam i -> Fmt.pf ppf "?%d" i
  | RHost v -> Fmt.pf ppf ":%s" v
  | RBin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_rexpr a (Ast.binop_name op) pp_rexpr b
  | RUn (Ast.Neg, a) -> Fmt.pf ppf "(- %a)" pp_rexpr a
  | RUn (Ast.Not, a) -> Fmt.pf ppf "(NOT %a)" pp_rexpr a
  | RFun (n, args) -> Fmt.pf ppf "%s(%a)" n Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr) args
  | RCase _ -> Fmt.string ppf "CASE..."
  | RIs_null a -> Fmt.pf ppf "(%a IS NULL)" pp_rexpr a
  | RLike (a, p) -> Fmt.pf ppf "(%a LIKE '%s')" pp_rexpr a p
  | RSub s ->
    let k =
      match s.sub_kind with
      | Sk_exists -> "EXISTS"
      | Sk_all -> "ALL"
      | Sk_set_pred n -> n
    in
    Fmt.pf ppf "%s[subplan](%a)" k pp_rexpr s.sub_pred
  | RScalar_sub _ -> Fmt.string ppf "SCALAR[subplan]"

let op_name = function
  | Scan { sc_table; _ } -> Fmt.str "SCAN(%s)" sc_table
  | Idx_access { ix_table; ix_index; _ } -> Fmt.str "IXSCAN(%s.%s)" ix_table ix_index
  | Idx_and { ia_table; ia_probes; _ } ->
    Fmt.str "IXAND(%s:%s)" ia_table
      (String.concat "&" (List.map fst ia_probes))
  | Filter _ -> "FILTER"
  | Or_filter _ -> "OR"
  | Project _ -> "PROJECT"
  | Sort _ -> "SORT"
  | Join { j_method; j_kind; _ } ->
    Fmt.str "JOIN[%s,%s]" (join_method_name j_method) (join_kind_name j_kind)
  | Group _ -> "GROUP"
  | Distinct_op -> "DISTINCT"
  | Union_all -> "UNION-ALL"
  | Intersect_op all -> if all then "INTERSECT-ALL" else "INTERSECT"
  | Except_op all -> if all then "EXCEPT-ALL" else "EXCEPT"
  | Temp -> "TEMP"
  | Ship site -> Fmt.str "SHIP(%s)" site
  | Limit_op n -> Fmt.str "LIMIT(%d)" n
  | Values_scan _ -> "VALUES"
  | Table_fn_scan { tf_name; _ } -> Fmt.str "TABLEFN(%s)" tf_name
  | Bloom_filter _ -> "BLOOM"
  | Fixpoint _ -> "FIXPOINT"
  | Rec_delta _ -> "REC-DELTA"
  | Choose_op -> "CHOOSE"

let op_detail = function
  | Scan { sc_preds; sc_cols; _ } ->
    Fmt.str "cols=[%a] preds=[%a]"
      Fmt.(list ~sep:(Fmt.any ", ") int)
      sc_cols
      Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr)
      sc_preds
  | Idx_access { ix_probe; ix_preds; _ } ->
    let probe =
      match ix_probe with
      | Pr_eq es -> Fmt.str "eq(%a)" Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr) es
      | Pr_range _ -> "range"
      | Pr_custom (n, es) -> Fmt.str "%s(%a)" n Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr) es
    in
    Fmt.str "probe=%s residual=[%a]" probe Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr) ix_preds
  | Filter preds | Or_filter preds ->
    Fmt.str "[%a]" Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr) preds
  | Project exprs -> Fmt.str "[%a]" Fmt.(list ~sep:(Fmt.any ", ") pp_rexpr) exprs
  | Sort keys ->
    Fmt.str "[%a]"
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf (i, d) ->
            Fmt.pf ppf "$%d%s" i (match d with Ast.Asc -> "" | Ast.Desc -> " DESC")))
      keys
  | Join { j_equi; j_pred; _ } ->
    Fmt.str "equi=[%a]%a"
      Fmt.(list ~sep:(Fmt.any ", ") (fun ppf (a, b) -> Fmt.pf ppf "$%d=$%d" a b))
      j_equi
      Fmt.(option (fun ppf p -> Fmt.pf ppf " pred=%a" pp_rexpr p))
      j_pred
  | Group { g_keys; g_aggs; g_sorted } ->
    Fmt.str "keys=[%a] aggs=[%a]%s"
      Fmt.(list ~sep:(Fmt.any ", ") int)
      g_keys
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf (n, d, a) ->
            Fmt.pf ppf "%s%s(%a)" n
              (if d then " distinct" else "")
              (option int) a))
      g_aggs
      (if g_sorted then " (streamed)" else "")
  | _ -> ""

let rec pp ?(indent = 0) ppf (p : plan) =
  let pad = String.make (indent * 2) ' ' in
  let detail = op_detail p.op in
  Fmt.pf ppf "%s%s%s  {cost=%.2f card=%.0f%s%s}@." pad (op_name p.op)
    (if detail = "" then "" else " " ^ detail)
    p.props.p_cost p.props.p_card
    (match p.props.p_order with
    | [] -> ""
    | o ->
      Fmt.str " order=[%s]"
        (String.concat ","
           (List.map
              (fun (i, d) ->
                Fmt.str "$%d%s" i (match d with Ast.Asc -> "" | Ast.Desc -> "v"))
              o)))
    (if p.props.p_site = "local" then "" else " site=" ^ p.props.p_site);
  List.iter (fun c -> pp ~indent:(indent + 1) ppf c) p.inputs

let to_string p =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_geometry ppf ~max_indent:9_998 ~margin:10_000;
  pp ppf p;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(** Counts operators in a plan (used by tests and the bench harness). *)
let rec size (p : plan) = 1 + List.fold_left (fun a c -> a + size c) 0 p.inputs

(** Whether this operator (not its inputs) has a vectorized
    batch-at-a-time implementation in the QES.  The executor consults
    this to route each node through the batch engine or the
    tuple-at-a-time fallback; a node is never half-batched, so the two
    engines compose freely within one plan. *)
let batch_capable (p : plan) =
  match p.op with
  | Scan _ | Filter _ | Or_filter _ | Project _ | Sort _ | Distinct_op
  | Union_all | Intersect_op _ | Except_op _ | Temp | Ship _ | Limit_op _
  | Values_scan _ | Choose_op ->
    true
  (* streaming (pre-sorted) aggregation stays tuple-at-a-time *)
  | Group { g_keys; g_sorted; _ } -> not (g_sorted && g_keys <> [])
  (* hash and merge joins vectorize when the inner shares the enclosing
     parameter space; parameter-bound inners re-evaluate per outer
     binding and stay on the demand-driven tuple path, as do
     nested-loop joins *)
  | Join { j_method = Hash_join | Sort_merge; j_bound; _ } -> not j_bound
  | Join _ -> false
  | Idx_access _ | Idx_and _ | Table_fn_scan _ | Bloom_filter _ | Fixpoint _
  | Rec_delta _ ->
    false

(** Rewrites every runtime expression of a plan in the {e current}
    parameter space: descends through inputs but not into the inner
    plans of parameter-bound joins nor into embedded subplans (both own
    their parameter spaces — [map_rexpr] already stops at [RSub]
    boundaries). *)
let rec map_plan_rexprs f (p : plan) : plan =
  let mr = map_rexpr f in
  let probe = function
    | Pr_eq es -> Pr_eq (List.map mr es)
    | Pr_range (lo, hi) ->
      Pr_range
        ( Option.map (fun (e, b) -> (mr e, b)) lo,
          Option.map (fun (e, b) -> (mr e, b)) hi )
    | Pr_custom (n, es) -> Pr_custom (n, List.map mr es)
  in
  let op =
    match p.op with
    | Scan s -> Scan { s with sc_preds = List.map mr s.sc_preds }
    | Idx_access s ->
      Idx_access
        { s with ix_preds = List.map mr s.ix_preds; ix_probe = probe s.ix_probe }
    | Idx_and s ->
      Idx_and
        {
          s with
          ia_preds = List.map mr s.ia_preds;
          ia_probes = List.map (fun (n, p) -> (n, probe p)) s.ia_probes;
        }
    | Filter ps -> Filter (List.map mr ps)
    | Or_filter ps -> Or_filter (List.map mr ps)
    | Project es -> Project (List.map mr es)
    | Join j ->
      Join
        {
          j with
          j_pred = Option.map mr j.j_pred;
          j_kind_pred = Option.map mr j.j_kind_pred;
          j_corr = List.map mr j.j_corr;
        }
    | Values_scan rows -> Values_scan (List.map (List.map mr) rows)
    | Table_fn_scan t -> Table_fn_scan { t with tf_args = List.map mr t.tf_args }
    | ( Sort _ | Group _ | Distinct_op | Union_all | Intersect_op _ | Except_op _
      | Temp | Ship _ | Limit_op _ | Bloom_filter _ | Fixpoint _ | Rec_delta _
      | Choose_op ) as op ->
      op
  in
  let inputs =
    match op with
    | Join j when j.j_bound -> (
      match p.inputs with
      | [ o; i ] -> [ map_plan_rexprs f o; i ]
      | l -> l)
    | _ -> List.map (map_plan_rexprs f) p.inputs
  in
  { p with op; inputs }

(** Renumbers the plan's correlation parameters: [RParam i] becomes
    [RParam (remap i)]. *)
let renumber_params remap (p : plan) : plan =
  map_plan_rexprs (function RParam i -> RParam (remap i) | e -> e) p
