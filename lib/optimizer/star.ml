(** STARs — STrategy Alternative Rules (section 6, [LOHM88]).

    Executable plans are defined by a grammar-like set of parameterized
    production rules.  A STAR has a name (a nonterminal), parameters
    (the {!payload}), and one or more alternative definitions in terms
    of LOLEPOPs or other STARs; IF-conditions gate each alternative and
    ranks allow pruning.  The three aspects the paper keeps orthogonal —
    (1) the STAR array, (2) the rule evaluator ({!invoke}), and (3) the
    search {!strategy} — are separate values here, so each can be
    replaced independently: a DBC adds or replaces alternatives without
    touching the evaluator, and the strategy (alternative ordering, rank
    bound, plan pruning) without touching either. *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
open Sb_storage

(** Parameters passed to a STAR invocation.  Not every STAR uses every
    field; [make_payload] fills defaults. *)
type payload = {
  pl_quant : int;  (** QGM quantifier the plans are for *)
  pl_table : string;  (** base table (TableAccess) *)
  pl_stats : Stats.t;
  pl_cols : int list;  (** base columns needed *)
  pl_preds : Plan.rexpr list;  (** predicates over base column indices *)
  pl_info : Cost.slot_info;  (** selectivity info for the above *)
  pl_attachments : Access_method.instance list;
  pl_outer : Plan.plan option;
  pl_inner : Plan.plan option;
  pl_kind : Plan.join_kind;
  pl_equi : (int * int) list;
  pl_pred : Plan.rexpr option;
  pl_kind_pred : Plan.rexpr option;
  pl_corr : Plan.rexpr list;
  pl_bound : bool;  (** inner owns its parameter space (subquery joins) *)
  pl_keys : (int * Ast.order_dir) list;  (** required order (glue) *)
  pl_site : string;  (** required site (glue) *)
  pl_plan : Plan.plan option;  (** subject of glue STARs *)
}

let make_payload ?(quant = -1) ?(table = "") ?(stats = Stats.empty) ?(cols = [])
    ?(preds = []) ?(info = Cost.no_info) ?(attachments = []) ?outer ?inner
    ?(kind = Plan.J_regular) ?(equi = []) ?pred ?kind_pred ?(corr = [])
    ?(bound = false) ?(keys = []) ?(site = "local") ?plan () =
  {
    pl_quant = quant;
    pl_table = table;
    pl_stats = stats;
    pl_cols = cols;
    pl_preds = preds;
    pl_info = info;
    pl_attachments = attachments;
    pl_outer = outer;
    pl_inner = inner;
    pl_kind = kind;
    pl_equi = equi;
    pl_pred = pred;
    pl_kind_pred = kind_pred;
    pl_corr = corr;
    pl_bound = bound;
    pl_keys = keys;
    pl_site = site;
    pl_plan = plan;
  }

(** Recognizes an index probe for an attachment given the available
    predicates (over base column indices).  Returns the probe, its
    selectivity, and the predicates it fully absorbs.  Extensions (e.g.
    the R-tree's [overlaps] probe) register their own matchers. *)
type probe_matcher =
  Access_method.instance ->
  Plan.rexpr list ->
  (Plan.probe_spec * float * Plan.rexpr list) option

type ctx = {
  catalog : Catalog.t;
  stars : (string, star) Hashtbl.t;  (** the STAR array *)
  mutable strategy : strategy;
  mutable probe_matchers : probe_matcher list;
  site_of : string -> string;
  mutable invocations : int;  (** STAR invocations (bench accounting) *)
  mutable plans_generated : int;  (** plans produced before pruning *)
  mutable plans_pruned : int;  (** plans discarded by the strategy *)
  mutable tracer : Sb_obs.Trace.t;  (** spans per expansion when enabled *)
  mutable governor : Sb_resil.Limits.gov option;
      (** per-query plan-node budget, charged on every expansion *)
}

and star = { star_name : string; mutable alternatives : alternative list }

and alternative = {
  alt_name : string;
  alt_rank : int;  (** alternatives above the strategy's rank are pruned *)
  alt_cond : ctx -> payload -> bool;
  alt_produce : ctx -> payload -> Plan.plan list;
}

and strategy = {
  st_name : string;
  st_max_rank : int;
  st_order : alternative list -> alternative list;
      (** evaluation order — the prioritized-queue mechanism: breadth-
          first, depth-first or custom orders arise from this ordering *)
  st_prune : Plan.plan list -> Plan.plan list;
      (** which generated plans survive (interesting-order pruning) *)
}

exception Opt_error of string

let error fmt = Fmt.kstr (fun s -> raise (Opt_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

let find_star ctx name =
  match Hashtbl.find_opt ctx.stars name with
  | Some s -> s
  | None -> error "no STAR named %s" name

(** Evaluates a STAR: filters alternatives by rank and condition, orders
    them per the strategy, evaluates each, and prunes the union of their
    plans. *)
let invoke ctx name payload : Plan.plan list =
  let star = find_star ctx name in
  ctx.invocations <- ctx.invocations + 1;
  let expand () =
    let applicable =
      List.filter
        (fun a -> a.alt_rank <= ctx.strategy.st_max_rank && a.alt_cond ctx payload)
        star.alternatives
    in
    let plans =
      List.concat_map
        (fun a -> a.alt_produce ctx payload)
        (ctx.strategy.st_order applicable)
    in
    ctx.plans_generated <- ctx.plans_generated + List.length plans;
    (match ctx.governor with
    | Some gov -> Sb_resil.Limits.charge_plan_nodes gov (List.length plans)
    | None -> ());
    if plans = [] then
      error "STAR %s produced no plan (quant %d)" name payload.pl_quant;
    let kept = ctx.strategy.st_prune plans in
    ctx.plans_pruned <- ctx.plans_pruned + (List.length plans - List.length kept);
    (plans, kept)
  in
  if not (Sb_obs.Trace.enabled ctx.tracer) then snd (expand ())
  else
    Sb_obs.Trace.with_span ctx.tracer "star.expand"
      ~attrs:[ ("star", name) ]
      (fun () ->
        let plans, kept = expand () in
        Sb_obs.Trace.add_attr ctx.tracer "generated"
          (string_of_int (List.length plans));
        Sb_obs.Trace.add_attr ctx.tracer "pruned"
          (string_of_int (List.length plans - List.length kept));
        kept)

(** Registers a STAR; merging alternatives if the name exists. *)
let register ctx (name : string) (alts : alternative list) =
  match Hashtbl.find_opt ctx.stars name with
  | Some s -> s.alternatives <- s.alternatives @ alts
  | None -> Hashtbl.replace ctx.stars name { star_name = name; alternatives = alts }

let star_count ctx = Hashtbl.length ctx.stars

let alternative_count ctx =
  Hashtbl.fold (fun _ s acc -> acc + List.length s.alternatives) ctx.stars 0

(* ------------------------------------------------------------------ *)
(* Default strategy                                                    *)
(* ------------------------------------------------------------------ *)

(** Does [order] satisfy the required [keys] as a prefix? *)
let order_satisfies ~(have : (int * Ast.order_dir) list) ~(want : (int * Ast.order_dir) list) =
  let rec go have want =
    match have, want with
    | _, [] -> true
    | [], _ :: _ -> false
    | h :: hs, w :: ws -> h = w && go hs ws
  in
  go have want

(** Does [q] strictly dominate [p]?  [q] must be at the same site, at
    least as good on every property a later operator could want — cost,
    estimated cardinality, duplicate-freeness, and [p]'s output order
    (as a prefix of [q]'s) — and strictly better on cost or
    cardinality.  Keeping [p] then never helps: any plan built on it
    has a counterpart built on [q] that is no worse. *)
let dominates (q : Plan.plan) (p : Plan.plan) =
  let qp = q.Plan.props and pp = p.Plan.props in
  qp.Plan.p_site = pp.Plan.p_site
  && qp.Plan.p_cost <= pp.Plan.p_cost
  && qp.Plan.p_card <= pp.Plan.p_card
  && (qp.Plan.p_distinct || not pp.Plan.p_distinct)
  && order_satisfies ~have:qp.Plan.p_order ~want:pp.Plan.p_order
  && (qp.Plan.p_cost < pp.Plan.p_cost || qp.Plan.p_card < pp.Plan.p_card)

(** Keep the cheapest plan overall plus the cheapest per interesting
    property combination (order, site, distinct) — the System R pruning
    criterion generalized to properties — after discarding strictly
    dominated plans (worse in cost {e and} cardinality with no
    compensating property). *)
let interesting_prune ?(max_plans = 8) (plans : Plan.plan list) : Plan.plan list =
  let plans =
    List.filter (fun p -> not (List.exists (fun q -> dominates q p) plans)) plans
  in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (p : Plan.plan) ->
      let key = (p.Plan.props.Plan.p_order, p.Plan.props.Plan.p_site, p.Plan.props.Plan.p_distinct) in
      match Hashtbl.find_opt groups key with
      | Some (best : Plan.plan) when best.Plan.props.Plan.p_cost <= p.Plan.props.Plan.p_cost -> ()
      | _ -> Hashtbl.replace groups key p)
    plans;
  let kept = Hashtbl.fold (fun _ p acc -> p :: acc) groups [] in
  let sorted =
    List.sort
      (fun (a : Plan.plan) b -> Float.compare a.Plan.props.Plan.p_cost b.Plan.props.Plan.p_cost)
      kept
  in
  List.filteri (fun i _ -> i < max_plans) sorted

let default_strategy =
  {
    st_name = "rank-ordered";
    st_max_rank = 100;
    st_order =
      (fun alts ->
        List.stable_sort (fun a b -> Int.compare a.alt_rank b.alt_rank) alts);
    st_prune = interesting_prune ~max_plans:8;
  }

(** A cheaper strategy: first applicable alternative only (greedy). *)
let greedy_strategy =
  {
    st_name = "greedy";
    st_max_rank = 0;
    st_order = (fun alts -> alts);
    st_prune = interesting_prune ~max_plans:1;
  }

let create ?(strategy = default_strategy) ~catalog ~site_of () : ctx =
  {
    catalog;
    stars = Hashtbl.create 16;
    strategy;
    probe_matchers = [];
    site_of;
    invocations = 0;
    plans_generated = 0;
    plans_pruned = 0;
    tracer = Sb_obs.Trace.noop;
    governor = None;
  }
