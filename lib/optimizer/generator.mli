(** The plan optimizer driver: optimizes each QGM operation
    independently, bottom up, using the rule-driven plan generator
    (STARs) and the join enumerator (section 6, [ONO88]).

    Correlated subqueries compile to parameterized subplans; their
    parameters surface as [RParam]s bound by the enclosing join's
    evaluate-on-demand machinery at run time.  Setformers correlated
    with siblings (laterals) are applied through parameter-bound
    nested-loop joins after the commutative enumeration. *)

module Qgm = Sb_qgm.Qgm
module Functions = Sb_hydrogen.Functions
open Sb_storage

exception Unsupported of string

type t = {
  cat : Catalog.t;
  fns : Functions.t;
  sctx : Star.ctx;
  mutable allow_bushy : bool;  (** composite inners ("bushy trees") *)
  mutable allow_cartesian : bool;
  mutable select_handlers : (t -> env -> Qgm.t -> Qgm.box -> Plan.plan option) list;
      (** extension hooks for SELECT boxes with extension setformers
          (e.g. the outer-join extension's PF handler) *)
  mutable use_analysis : bool;
      (** consult property inference ({!Sb_analysis.Infer}) to tighten
          cardinality estimates (key-covered joins, row bounds); on by
          default *)
  mutable analysis : Sb_analysis.Infer.t option;
      (** inferred properties of the graph last optimized *)
  mutable analysis_secs : float;  (** time spent in inference, last query *)
  (* join-enumerator accounting, read by the bench harness *)
  mutable enum_subsets : int;
  mutable enum_pairs : int;
  mutable enum_plans_kept : int;
}

(** One parameter-collection environment; a fresh one is opened at every
    subplan boundary. *)
and env

(** A generator over [catalog] with the base STAR array installed. *)
val create :
  ?strategy:Star.strategy -> catalog:Catalog.t -> functions:Functions.t -> unit -> t

(** Selectivity info for a plan, resolving slot provenance to base-table
    statistics through the QGM graph. *)
val plan_info : t -> Qgm.t -> Plan.plan -> Cost.slot_info

(** Compiles a QGM expression to a runtime expression.  [slotmap]
    resolves local column references to slots; anything unresolvable
    becomes a correlation parameter of [env]. *)
val compile_expr :
  t ->
  g:Qgm.t ->
  env:env ->
  slotmap:(int * int -> int option) ->
  Qgm.expr ->
  Plan.rexpr

(** Plans for iterating one quantifier, with [preds] pushed as close to
    the data as possible (used by extension plan handlers). *)
val access_plans :
  ?all_cols:bool -> t -> g:Qgm.t -> env:env -> Qgm.quant -> Qgm.expr list -> Plan.plan list

(** Compiles a box to a plan whose output slots are the box's head
    columns; returns the plan and its correlation parameters. *)
val compile_box :
  t -> g:Qgm.t -> ?rec_ctx:(int * int) list -> int -> Plan.plan * (int * int) array

(** Optimizes the whole QGM (the top box's head columns become the
    output slots).
    @raise Unsupported for constructs outside the planner's scope. *)
val optimize : t -> Qgm.t -> Plan.plan
