(** The plan optimizer driver: optimizes each QGM operation
    independently, bottom up, using the rule-driven plan generator
    (STARs, {!Star}) and the join enumerator (section 6, [ONO88]).

    Correlated subqueries compile to parameterized subplans; their
    parameters surface as [RParam]s bound by the enclosing join's
    evaluate-on-demand machinery at run time. *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
module Functions = Sb_hydrogen.Functions
open Sb_storage
open Plan

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type t = {
  cat : Catalog.t;
  fns : Functions.t;
  sctx : Star.ctx;
  mutable allow_bushy : bool;  (** composite inners ("bushy trees") *)
  mutable allow_cartesian : bool;
  mutable select_handlers : (t -> env -> Qgm.t -> Qgm.box -> Plan.plan option) list;
      (** extension hooks for SELECT boxes with extension setformers
          (e.g. the outer-join extension's PF handler) *)
  mutable use_analysis : bool;
      (** consult property inference ({!Sb_analysis.Infer}) to tighten
          cardinality estimates (key-covered joins, row bounds) *)
  mutable analysis : Sb_analysis.Infer.t option;
      (** inferred properties of the graph being optimized *)
  mutable analysis_secs : float;  (** time spent in inference, last query *)
  (* join-enumerator accounting, read by the bench harness *)
  mutable enum_subsets : int;
  mutable enum_pairs : int;
  mutable enum_plans_kept : int;
}

(** One parameter-collection environment; a fresh one is opened at every
    subplan boundary (subquery joins, residual subquery predicates). *)
and env = {
  e_params : ((int * int), int) Hashtbl.t;  (** (quant, col) -> param index *)
  mutable e_nparams : int;
  e_rec : (int * int) list;  (** recursive boxes under compilation: box id -> quant for deltas *)
}

let create ?(strategy = Star.default_strategy) ~catalog ~functions () : t =
  let sctx =
    Star.create ~strategy ~catalog
      ~site_of:(fun table -> catalog.Catalog.site_of table)
      ()
  in
  Base_stars.install sctx;
  {
    cat = catalog;
    fns = functions;
    sctx;
    allow_bushy = false;
    allow_cartesian = false;
    select_handlers = [];
    use_analysis = true;
    analysis = None;
    analysis_secs = 0.0;
    enum_subsets = 0;
    enum_pairs = 0;
    enum_plans_kept = 0;
  }

let fresh_env ?(rec_ctx = []) () =
  { e_params = Hashtbl.create 4; e_nparams = 0; e_rec = rec_ctx }

let intern_param env key =
  match Hashtbl.find_opt env.e_params key with
  | Some i -> i
  | None ->
    let i = env.e_nparams in
    env.e_nparams <- i + 1;
    Hashtbl.replace env.e_params key i;
    i

let params_of env : (int * int) array =
  let a = Array.make env.e_nparams (-1, -1) in
  Hashtbl.iter (fun k i -> a.(i) <- k) env.e_params;
  a

(* ------------------------------------------------------------------ *)
(* Statistics helpers                                                  *)
(* ------------------------------------------------------------------ *)

let table_stats t name =
  match Catalog.find_table t.cat name with
  | Some tab ->
    let stats = tab.Table_store.stats in
    if stats.Stats.ts_cardinality = 0 && Table_store.tuple_count tab > 0 then
      Table_store.analyze tab
    else stats
  | None -> Stats.empty

(** Slot info for a plan, resolving slot provenance to base-table
    statistics through the QGM graph. *)
let plan_info t (g : Qgm.t) (p : plan) : Cost.slot_info =
 fun slot ->
  if slot < 0 || slot >= Array.length p.props.p_slots then None
  else
    let q, c = p.props.p_slots.(slot) in
    if q < 0 then None
    else
      match Hashtbl.find_opt g.Qgm.quants q with
      | None -> None
      | Some quant -> (
        match (Qgm.box g quant.Qgm.q_input).Qgm.b_kind with
        | Qgm.Base_table name -> Some (table_stats t name, c)
        | _ -> None)

(* ------------------------------------------------------------------ *)
(* Inferred-property helpers                                           *)
(* ------------------------------------------------------------------ *)

module Infer = Sb_analysis.Infer

(** Caps [p]'s cardinality estimate from above — never below one row,
    since downstream cost formulas divide by cardinalities. *)
let cap_card (cap : float) (p : plan) : plan =
  if cap < p.props.p_card then
    { p with props = { p.props with p_card = Float.max 1.0 cap } }
  else p

(** Caps a finished box plan by the box's inferred row bound
    ([bp_max_rows]: declared keys, GROUP BY key-range widths, LIMITs,
    single-row subquery proofs). *)
let clamp_box_card t (b : Qgm.box) (p : plan) : plan =
  match t.analysis with
  | None -> p
  | Some inf -> (
    match (Infer.box_props inf b.Qgm.b_id).Sb_analysis.Props.bp_max_rows with
    | Some n -> cap_card (float_of_int n) p
    | None -> p)

(** When the equi-join columns on one side cover a derived key of that
    side's quantifier, every row of the other side matches at most one
    row, so the join output is capped by the other side's estimate —
    the key/foreign-key case the default selectivity model
    underestimates for derived inputs (no statistics resolve). *)
let key_join_cap t (g : Qgm.t) ~(outer : plan) ~(inner : plan)
    ~(equi : (int * int) list) (p : plan) : plan =
  match t.analysis, equi with
  | None, _ | _, [] -> p
  | Some inf, _ ->
    let side_covered (side : plan) proj =
      match side.props.p_quants with
      | [ qid ] ->
        let cols =
          List.filter_map
            (fun eq ->
              let s = proj eq in
              if s >= 0 && s < Array.length side.props.p_slots then begin
                let q, c = side.props.p_slots.(s) in
                if q = qid && c >= 0 then Some c else None
              end
              else None)
            equi
        in
        cols <> []
        && Infer.quant_has_key inf g qid (List.sort_uniq Int.compare cols)
      | _ -> false
    in
    let p = if side_covered inner snd then cap_card outer.props.p_card p else p in
    if side_covered outer fst then cap_card inner.props.p_card p else p

(** All columns of quantifier [q] referenced anywhere in the graph. *)
let needed_cols (g : Qgm.t) qid : int list =
  let cols = ref [] in
  let note e =
    List.iter (fun (q, i) -> if q = qid then cols := i :: !cols) (Qgm.col_refs e)
  in
  Hashtbl.iter
    (fun _ (b : Qgm.box) ->
      List.iter (fun hc -> Option.iter note hc.Qgm.hc_expr) b.Qgm.b_head;
      List.iter (fun (p : Qgm.pred) -> note p.Qgm.p_expr) b.Qgm.b_preds;
      List.iter (fun (e, _) -> note e) b.Qgm.b_order;
      match b.Qgm.b_kind with
      | Qgm.Group_by keys -> List.iter note keys
      | Qgm.Values_box rows -> List.iter (List.iter note) rows
      | Qgm.Table_fn (_, args) -> List.iter note args
      | _ -> ())
    g.Qgm.boxes;
  List.sort_uniq Int.compare !cols

(** Quantifiers referenced inside the subtree rooted at [box_id] that do
    not belong to it — correlations to enclosing scopes, or to sibling
    setformers (lateral references). *)
let free_quant_refs (g : Qgm.t) box_id : int list =
  let seen = Hashtbl.create 8 in
  let owned = Hashtbl.create 16 in
  let refs = ref [] in
  let note e = refs := Qgm.quant_refs e @ !refs in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let b = Qgm.box g id in
      List.iter (fun q -> Hashtbl.replace owned q.Qgm.q_id ()) b.Qgm.b_quants;
      List.iter (fun hc -> Option.iter note hc.Qgm.hc_expr) b.Qgm.b_head;
      List.iter (fun (p : Qgm.pred) -> note p.Qgm.p_expr) b.Qgm.b_preds;
      List.iter (fun (e, _) -> note e) b.Qgm.b_order;
      (match b.Qgm.b_kind with
      | Qgm.Group_by keys -> List.iter note keys
      | Qgm.Values_box rows -> List.iter (List.iter note) rows
      | Qgm.Table_fn (_, args) -> List.iter note args
      | _ -> ());
      List.iter (fun q -> visit q.Qgm.q_input) b.Qgm.b_quants
    end
  in
  visit box_id;
  List.sort_uniq Int.compare !refs
  |> List.filter (fun r -> not (Hashtbl.mem owned r))

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(** [slotmap] resolves local column references to slots; anything it
    cannot resolve becomes a correlation parameter of [env].  Scalar
    subquery quantifiers compile to embedded subplans. *)
let rec compile_expr t ~(g : Qgm.t) ~env ~slotmap (e : Qgm.expr) : rexpr =
  let recur = compile_expr t ~g ~env ~slotmap in
  match e with
  | Qgm.Lit v -> RLit v
  | Qgm.Host v -> RHost v
  | Qgm.Col (qid, i) -> (
    match slotmap (qid, i) with
    | Some s -> RCol s
    | None -> (
      match Hashtbl.find_opt g.Qgm.quants qid with
      | Some q when q.Qgm.q_type = Qgm.S ->
        (* scalar subquery *)
        let sub, params = compile_box t ~g ~rec_ctx:env.e_rec q.Qgm.q_input in
        let ssub_params =
          Array.to_list params |> List.map (fun key -> recur (Qgm.Col (fst key, snd key)))
        in
        RScalar_sub { ssub_plan = sub; ssub_params }
      | _ -> RParam (intern_param env (qid, i))))
  | Qgm.Bin (op, a, b) -> RBin (op, recur a, recur b)
  | Qgm.Un (op, a) -> RUn (op, recur a)
  | Qgm.Fun (n, args) -> RFun (n, List.map recur args)
  | Qgm.Agg _ -> unsupported "aggregate outside GROUP BY compilation"
  | Qgm.Case (arms, els) ->
    RCase (List.map (fun (c, v) -> (recur c, recur v)) arms, Option.map recur els)
  | Qgm.Is_null a -> RIs_null (recur a)
  | Qgm.Like (a, p) -> RLike (recur a, p)
  | Qgm.Quantified (qid, inner) ->
    (* residual quantified predicate: an embedded subplan (the uniform
       mechanism behind the OR operator, section 7) *)
    let q = Qgm.quant g qid in
    let sub, params = compile_box t ~g ~rec_ctx:env.e_rec q.Qgm.q_input in
    let sub_env = fresh_env ~rec_ctx:env.e_rec () in
    (* inner predicate: subquery columns are inner slots; everything
       else becomes a parameter of the sub_spec *)
    let inner_slotmap (iq, ic) = if iq = qid then Some ic else None in
    let sub_pred = compile_expr t ~g ~env:sub_env ~slotmap:inner_slotmap inner in
    (* parameter sources: subplan correlation params first, then the
       inner-pred params *)
    let all_params =
      Array.to_list params @ Array.to_list (params_of sub_env)
    in
    (* renumber: sub_pred params came after plan params *)
    let sub_pred =
      map_rexpr
        (function
          | RParam i -> RParam (Array.length params + i)
          | e -> e)
        sub_pred
    in
    let sub_params = List.map (fun (q, c) -> recur (Qgm.Col (q, c))) all_params in
    let sub_kind =
      match q.Qgm.q_type with
      | Qgm.E -> Sk_exists
      | Qgm.A -> Sk_all
      | Qgm.SP name -> Sk_set_pred name
      | Qgm.F | Qgm.S | Qgm.Ext _ ->
        unsupported "Quantified over setformer quantifier"
    in
    (* the subplan's own RParams index into the same parameter list
       prefix, which is the layout the executor expects *)
    RSub { sub_kind; sub_plan = sub; sub_params; sub_pred }

(* ------------------------------------------------------------------ *)
(* Access plans for one quantifier                                     *)
(* ------------------------------------------------------------------ *)

(** Plans for iterating quantifier [q], with [preds] (QGM conjuncts
    referencing only [q] locally) pushed as close to the data as
    possible. *)
and access_plans ?(all_cols = false) t ~g ~env (q : Qgm.quant)
    (preds : Qgm.expr list) : plan list =
  let input = Qgm.box g q.Qgm.q_input in
  match List.assoc_opt q.Qgm.q_input env.e_rec with
  | Some w ->
    (* a reference to the table being computed by an enclosing fixpoint:
       iterate the current delta *)
    let delta = Cost.mk_rec_delta ~quant:q.Qgm.q_id ~width:w ~card:128.0 in
    let slotmap (pq, pc) = if pq = q.Qgm.q_id then Some pc else None in
    let rpreds = List.map (compile_expr t ~g ~env ~slotmap) preds in
    [ Cost.mk_filter ~info:Cost.no_info rpreds delta ]
  | None -> (
  match input.Qgm.b_kind with
  | Qgm.Base_table name ->
    let tab =
      match Catalog.find_table t.cat name with
      | Some tab -> tab
      | None -> unsupported "table %s disappeared" name
    in
    let stats = table_stats t name in
    let cols =
      if all_cols then List.init (Array.length tab.Table_store.schema) Fun.id
      else
        match needed_cols g q.Qgm.q_id with
        | [] -> [ 0 ]  (* existence-only access still needs one column *)
        | cols -> cols
    in
    (* predicates over base column indices; non-local refs -> params *)
    let slotmap (pq, pc) = if pq = q.Qgm.q_id then Some pc else None in
    let rpreds = List.map (compile_expr t ~g ~env ~slotmap) preds in
    let info slot =
      if slot >= 0 && slot < Array.length tab.Table_store.schema then
        Some (stats, slot)
      else None
    in
    let payload =
      Star.make_payload ~quant:q.Qgm.q_id ~table:name ~stats ~cols ~preds:rpreds
        ~info ~attachments:tab.Table_store.attachments ()
    in
    let plans = Star.invoke t.sctx "TableAccess" payload in
    (* scan predicates are over column indices; re-expressed over output
       slots happens inside the executor, so nothing more to do *)
    plans
  | _ ->
    (* derived table (or recursive delta): compile the box, relabel its
       output to this quantifier, then filter *)
    let sub, params = compile_box t ~g ~rec_ctx:env.e_rec q.Qgm.q_input in
    (* the subplan is embedded inline, so its correlation parameters
       must live in this env's numbering *)
    let sub =
      if Array.length params = 0 then sub
      else begin
        let remap = Array.map (fun key -> intern_param env key) params in
        renumber_params (fun i -> remap.(i)) sub
      end
    in
    let relabeled =
      {
        sub with
        props =
          {
            sub.props with
            p_quants = [ q.Qgm.q_id ];
            p_slots = Array.mapi (fun i _ -> (q.Qgm.q_id, i)) sub.props.p_slots;
          };
      }
    in
    let slotmap (pq, pc) = if pq = q.Qgm.q_id then Some pc else None in
    let rpreds = List.map (compile_expr t ~g ~env ~slotmap) preds in
    [ Cost.mk_filter ~info:(plan_info t g relabeled) rpreds relabeled ])

(* ------------------------------------------------------------------ *)
(* Join enumeration                                                    *)
(* ------------------------------------------------------------------ *)

(** Enumerates join orders for the setformers of a SELECT box by
    iteratively constructing progressively larger iterator sets from
    two smaller ones.  Composite inners and Cartesian products are
    pruned unless enabled (the R*-compatible default). *)
and enumerate_joins t ~g ~env ~(quants : Qgm.quant list)
    ~(accesses : (int * plan list) list) ~(join_preds : Qgm.expr list) :
    plan list =
  let n = List.length quants in
  let qid_arr = Array.of_list (List.map (fun q -> q.Qgm.q_id) quants) in
  let idx_of qid =
    let rec go i = if qid_arr.(i) = qid then i else go (i + 1) in
    go 0
  in
  let full = (1 lsl n) - 1 in
  let memo : (int, plan list) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i q -> Hashtbl.replace memo (1 lsl i) (List.assoc q.Qgm.q_id accesses))
    quants;
  (* precompute which quantifier mask each join predicate needs *)
  let pred_masks =
    List.map
      (fun p ->
        let local =
          List.filter_map
            (fun qid ->
              if Array.exists (fun x -> x = qid) qid_arr then
                Some (1 lsl idx_of qid)
              else None)
            (Qgm.quant_refs p)
        in
        (List.fold_left ( lor ) 0 local, p))
      join_preds
  in
  let slotmap_of (outer : plan) (inner : plan) (qc : int * int) =
    match slot_of outer qc with
    | Some s -> Some s
    | None -> (
      match slot_of inner qc with
      | Some s -> Some (Array.length outer.props.p_slots + s)
      | None -> None)
  in
  let try_join allow_cartesian m1 m2 acc =
    let union = m1 lor m2 in
    let applicable =
      List.filter
        (fun (mask, _) ->
          mask land union = mask && mask land m1 <> 0 && mask land m2 <> 0)
        pred_masks
    in
    if applicable = [] && not allow_cartesian then acc
    else begin
      t.enum_pairs <- t.enum_pairs + 1;
      let outers = try Hashtbl.find memo m1 with Not_found -> [] in
      let inners = try Hashtbl.find memo m2 with Not_found -> [] in
      List.fold_left
        (fun acc outer ->
          List.fold_left
            (fun acc inner ->
              (* split applicable predicates into equi pairs and the rest *)
              let equi = ref [] and rest = ref [] in
              List.iter
                (fun (_, p) ->
                  match p with
                  | Qgm.Bin (Ast.Eq, Qgm.Col (q1, c1), Qgm.Col (q2, c2)) -> (
                    match slot_of outer (q1, c1), slot_of inner (q2, c2) with
                    | Some o, Some i -> equi := (o, i) :: !equi
                    | _ -> (
                      match slot_of outer (q2, c2), slot_of inner (q1, c1) with
                      | Some o, Some i -> equi := (o, i) :: !equi
                      | _ -> rest := p :: !rest))
                  | p -> rest := p :: !rest)
                applicable;
              let pred =
                match !rest with
                | [] -> None
                | es ->
                  let compiled =
                    List.map
                      (fun e ->
                        compile_expr t ~g ~env ~slotmap:(slotmap_of outer inner) e)
                      es
                  in
                  Some
                    (match compiled with
                    | e :: tl -> List.fold_left (fun a b -> RBin (Ast.And, a, b)) e tl
                    | [] -> assert false)
              in
              let payload =
                Star.make_payload ~outer ~inner ~kind:J_regular ~equi:!equi
                  ?pred ~info:(plan_info t g outer) ()
              in
              List.map
                (key_join_cap t g ~outer ~inner ~equi:!equi)
                (Star.invoke t.sctx "JoinRoot" payload)
              @ acc)
            acc outers)
        acc inners
      |> fun x -> x
    end
  in
  let run allow_cartesian =
    Hashtbl.reset memo;
    List.iteri
      (fun i q -> Hashtbl.replace memo (1 lsl i) (List.assoc q.Qgm.q_id accesses))
      quants;
    for size = 2 to n do
      for m = 1 to full do
        if
          (* popcount m = size *)
          let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
          pop m = size
        then begin
          t.enum_subsets <- t.enum_subsets + 1;
          let plans = ref [] in
          (* split m into outer m1 and inner m2 *)
          let rec submasks s =
            if s = 0 then ()
            else begin
              let m2 = s and m1 = m lxor s in
              if m1 <> 0 then begin
                let inner_is_single = m2 land (m2 - 1) = 0 in
                if t.allow_bushy || inner_is_single then
                  plans := try_join allow_cartesian m1 m2 !plans
              end;
              submasks ((s - 1) land m)
            end
          in
          submasks m;
          let kept = t.sctx.Star.strategy.Star.st_prune !plans in
          t.enum_plans_kept <- t.enum_plans_kept + List.length kept;
          Hashtbl.replace memo m kept
        end
      done
    done;
    try Hashtbl.find memo full with Not_found -> []
  in
  if n = 1 then List.assoc (List.hd quants).Qgm.q_id accesses
  else
    match run t.allow_cartesian with
    | [] -> (
      (* disconnected join graph: retry allowing Cartesian products *)
      match run true with
      | [] -> unsupported "join enumeration produced no plan"
      | plans -> plans)
    | plans -> plans

(* ------------------------------------------------------------------ *)
(* Subquery application (joins with special kinds)                     *)
(* ------------------------------------------------------------------ *)

(** Applies one subquery quantifier consumed as a whole-conjunct
    [Quantified] predicate, as a join whose {e kind} reflects the
    quantifier type (section 7: "we treat subqueries as special types
    of join"). *)
and apply_subquery_join t ~g ~env (outer : plan) (q : Qgm.quant)
    (inner_pred : Qgm.expr) : plan =
  let kind =
    match q.Qgm.q_type with
    | Qgm.E -> J_exists
    | Qgm.A -> J_all
    | Qgm.S -> J_scalar
    | Qgm.SP name -> J_set_pred name
    | Qgm.F | Qgm.Ext _ -> unsupported "setformer in subquery application"
  in
  let sub, params = compile_box t ~g ~rec_ctx:env.e_rec q.Qgm.q_input in
  let ow = Array.length outer.props.p_slots in
  (* correlation parameter sources over outer slots (or outer params) *)
  let outer_slotmap qc = slot_of outer qc in
  let corr =
    Array.to_list params
    |> List.map (fun (pq, pc) ->
           compile_expr t ~g ~env ~slotmap:outer_slotmap (Qgm.Col (pq, pc)))
  in
  (* the per-inner-row predicate over [outer @ inner] slots *)
  let joined_slotmap (iq, ic) =
    if iq = q.Qgm.q_id then Some (ow + ic) else outer_slotmap (iq, ic)
  in
  let kind_pred = compile_expr t ~g ~env ~slotmap:joined_slotmap inner_pred in
  (* extract equi conjuncts for hash/merge when uncorrelated; only the
     existential kind treats the comparison as a match condition — for
     ALL/set-predicate/scalar kinds the predicate must be evaluated per
     inner row, so it stays in kind_pred *)
  let extract_equi = kind = J_exists in
  let equi, residual =
    List.fold_left
      (fun (equi, residual) e ->
        match e with
        | RBin (Ast.Eq, RCol o, RCol i) when extract_equi && o < ow && i >= ow ->
          ((o, i - ow) :: equi, residual)
        | RBin (Ast.Eq, RCol i, RCol o) when extract_equi && o < ow && i >= ow ->
          ((o, i - ow) :: equi, residual)
        | e -> (equi, e :: residual))
      ([], [])
      (let rec conj = function
         | RBin (Ast.And, a, b) -> conj a @ conj b
         | e -> [ e ]
       in
       conj kind_pred)
  in
  let kind_pred_residual =
    match residual with
    | [] -> None
    | e :: tl -> Some (List.fold_left (fun a b -> RBin (Ast.And, a, b)) e tl)
  in
  let payload =
    Star.make_payload ~outer ~inner:sub ~kind ~equi
      ?kind_pred:kind_pred_residual ~corr ~bound:true
      ~info:(plan_info t g outer) ()
  in
  match Star.invoke t.sctx "JoinRoot" payload with
  | p :: _ -> p
  | [] -> unsupported "no plan for subquery join"

(** Applies a lateral setformer: the inner box is re-evaluated per outer
    row through the parameter-bound nested-loop machinery, and its
    columns are appended to the output (a regular-kind bound join). *)
and apply_lateral_join t ~g ~env (outer : plan) (q : Qgm.quant) : plan =
  let sub, params = compile_box t ~g ~rec_ctx:env.e_rec q.Qgm.q_input in
  let sub =
    {
      sub with
      props =
        {
          sub.props with
          p_quants = [ q.Qgm.q_id ];
          p_slots = Array.mapi (fun i _ -> (q.Qgm.q_id, i)) sub.props.p_slots;
        };
    }
  in
  let outer_slotmap qc = slot_of outer qc in
  let corr =
    Array.to_list params
    |> List.map (fun (pq, pc) ->
           compile_expr t ~g ~env ~slotmap:outer_slotmap (Qgm.Col (pq, pc)))
  in
  Cost.mk_join ~bound:true ~method_:Nested_loop ~kind:J_regular ~equi:[]
    ~pred:None ~kind_pred:None ~corr ~sel:1.0 outer sub

(* ------------------------------------------------------------------ *)
(* Box compilation                                                     *)
(* ------------------------------------------------------------------ *)

(** Compiles a box to a plan whose output slots are the box's head
    columns in order.  Returns the plan and its correlation parameters
    (references to quantifiers of enclosing boxes). *)
and compile_box t ~(g : Qgm.t) ?(rec_ctx = []) (box_id : int) :
    plan * (int * int) array =
  let b = Qgm.box g box_id in
  let env = fresh_env ~rec_ctx () in
  (* boxes on the cycle of an already-active fixpoint compile normally;
     a newly-reached recursive box starts a fixpoint *)
  let inside_active_recursion =
    rec_ctx <> []
    && List.exists
         (fun (rid, _) ->
           let seen = Hashtbl.create 8 in
           let rec go id =
             id = rid
             || (not (Hashtbl.mem seen id))
                && begin
                  Hashtbl.replace seen id ();
                  List.exists
                    (fun q -> go q.Qgm.q_input)
                    (Qgm.box g id).Qgm.b_quants
                end
           in
           go box_id)
         rec_ctx
  in
  let plan =
    if Qgm.is_recursive g box_id && not inside_active_recursion then
      compile_recursive t ~g ~env b
    else
      match b.Qgm.b_kind with
      | Qgm.Select -> compile_select t ~g ~env b
      | Qgm.Group_by keys -> compile_group_by t ~g ~env b keys
      | Qgm.Set_op (op, all) -> compile_set_op t ~g ~env b op all
      | Qgm.Values_box rows -> compile_values t ~g ~env b rows
      | Qgm.Table_fn (name, args) -> compile_table_fn t ~g ~env b name args
      | Qgm.Choose -> compile_choose t ~g ~env b
      | Qgm.Base_table name ->
        (* direct base-table access (a bare quantifier-less reference) *)
        let stats = table_stats t name in
        let cols = List.init (Qgm.arity b) Fun.id in
        Cost.mk_scan ~table:name ~stats ~site:(t.sctx.Star.site_of name)
          ~quant:(-1) ~cols ~preds:[] ~info:Cost.no_info ()
      | Qgm.Ext_op name ->
        (match
           List.find_map (fun h -> h t env g b) t.select_handlers
         with
        | Some p -> p
        | None -> unsupported "extension operation %s has no plan handler" name)
  in
  (plan, params_of env)

(* --- SELECT --- *)

and compile_select t ~g ~env (b : Qgm.box) : plan =
  (* extension setformers (e.g. PF) are handled by registered hooks *)
  let has_ext_setformer =
    List.exists
      (fun q -> match q.Qgm.q_type with Qgm.Ext _ -> true | _ -> false)
      (Qgm.setformers b)
  in
  let base =
    if has_ext_setformer then
      match List.find_map (fun h -> h t env g b) t.select_handlers with
      | Some p -> p
      | None ->
        unsupported
          "SELECT box %d contains extension setformers and no handler is \
           registered"
          b.Qgm.b_id
    else compile_select_body t ~g ~env b
  in
  finish_box t ~g ~env b base

(** The common tail of box compilation: head projection, DISTINCT,
    ORDER BY and LIMIT. *)
and finish_box t ~g ~env (b : Qgm.box) (input : plan) : plan =
  let slotmap qc = slot_of input qc in
  let head_exprs =
    List.map
      (fun hc ->
        match hc.Qgm.hc_expr with
        | Some e -> compile_expr t ~g ~env ~slotmap e
        | None -> unsupported "box %d: head column without expression" b.Qgm.b_id)
      b.Qgm.b_head
  in
  let identity =
    List.length head_exprs = Array.length input.props.p_slots
    && List.for_all2 (fun i e -> e = RCol i)
         (List.init (List.length head_exprs) Fun.id)
         head_exprs
  in
  let slots =
    Array.of_list
      (List.map
         (function
           | RCol i when i < Array.length input.props.p_slots ->
             input.props.p_slots.(i)
           | _ -> computed_slot)
         head_exprs)
  in
  let projected =
    if identity then input else Cost.mk_project ~slots head_exprs input
  in
  let distincted =
    if b.Qgm.b_distinct then
      Cost.mk_distinct ~info:(plan_info t g projected) projected
    else projected
  in
  let ordered =
    if b.Qgm.b_order = [] then distincted
    else begin
      let compiled =
        List.map (fun (e, d) -> (compile_expr t ~g ~env ~slotmap e, d)) b.Qgm.b_order
      in
      let find ce =
        let rec go i = function
          | [] -> None
          | he :: rest -> if he = ce then Some i else go (i + 1) rest
        in
        go 0 head_exprs
      in
      let missing = List.filter (fun (ce, _) -> find ce = None) compiled in
      if missing = [] then
        Cost.mk_sort
          (List.map (fun (ce, d) -> (Option.get (find ce), d)) compiled)
          distincted
      else if b.Qgm.b_distinct then
        unsupported
          "ORDER BY expressions must appear in the output when SELECT DISTINCT \
           is used (box %d)"
          b.Qgm.b_id
      else begin
        (* hidden sort columns: project head plus the missing order keys,
           sort, then drop the extras *)
        let n = List.length head_exprs in
        let extras = List.map fst missing in
        let wide =
          Cost.mk_project
            ~slots:(Array.append slots (Array.make (List.length extras) computed_slot))
            (head_exprs @ extras) input
        in
        let key_slot ce =
          match find ce with
          | Some i -> i
          | None ->
            let rec go i = function
              | [] -> assert false
              | e :: rest -> if e = ce then n + i else go (i + 1) rest
            in
            go 0 extras
        in
        let sorted =
          Cost.mk_sort (List.map (fun (ce, d) -> (key_slot ce, d)) compiled) wide
        in
        Cost.mk_project ~slots (List.init n (fun i -> RCol i)) sorted
      end
    end
  in
  clamp_box_card t b
    (match b.Qgm.b_limit with
    | Some n -> Cost.mk_limit n ordered
    | None -> ordered)

and compile_select_body t ~g ~env (b : Qgm.box) : plan =
  let setformers = List.filter (fun q -> q.Qgm.q_type = Qgm.F) b.Qgm.b_quants in
  let setformer_ids = List.map (fun q -> q.Qgm.q_id) setformers in
  (* a setformer whose input references a sibling setformer is lateral:
     it cannot enter the commutative join enumeration and is instead
     applied afterwards through a parameter-bound nested-loop join *)
  let lateral_ids =
    List.filter_map
      (fun q ->
        if List.mem_assoc q.Qgm.q_input env.e_rec then None
        else
          let free = free_quant_refs g q.Qgm.q_input in
          if List.exists (fun r -> List.mem r setformer_ids && r <> q.Qgm.q_id) free
          then Some q.Qgm.q_id
          else None)
      setformers
  in
  let plain_setformers =
    List.filter (fun q -> not (List.mem q.Qgm.q_id lateral_ids)) setformers
  in
  let subquery_ids =
    List.filter_map
      (fun q ->
        match q.Qgm.q_type with
        | Qgm.E | Qgm.A | Qgm.S | Qgm.SP _ -> Some q.Qgm.q_id
        | Qgm.F | Qgm.Ext _ -> None)
      b.Qgm.b_quants
  in
  if setformers = [] then
    unsupported "SELECT box %d has no setformer (constant selects unsupported)"
      b.Qgm.b_id;
  (* classify predicates *)
  let sargable : (int * Qgm.expr list) list ref =
    ref (List.map (fun q -> (q.Qgm.q_id, [])) setformers)
  in
  let join_preds = ref [] and subquery_joins = ref [] and residual = ref [] in
  List.iter
    (fun (p : Qgm.pred) ->
      let e = p.Qgm.p_expr in
      let refs = Qgm.quant_refs e in
      let local_f = List.filter (fun r -> List.mem r setformer_ids) refs in
      let local_sub = List.filter (fun r -> List.mem r subquery_ids) refs in
      match e with
      | Qgm.Quantified (qid, inner) when List.mem qid subquery_ids ->
        subquery_joins := (qid, inner) :: !subquery_joins
      | _ when Qgm.contains_quantified e -> residual := e :: !residual
      | _ when local_sub <> [] ->
        (* references a scalar subquery column *)
        residual := e :: !residual
      | _ when List.exists (fun r -> List.mem r lateral_ids) refs ->
        (* evaluated after the lateral apply *)
        residual := e :: !residual
      | _ -> (
        match local_f with
        | [ q ] when not (List.mem q lateral_ids) ->
          sargable := List.map (fun (k, ps) -> if k = q then (k, ps @ [ e ]) else (k, ps)) !sargable
        | [] -> residual := e :: !residual
        | _ -> join_preds := e :: !join_preds))
    b.Qgm.b_preds;
  (* scalar quantifiers referenced from the head only also end up
     compiled lazily by compile_expr; nothing to do here *)
  if plain_setformers = [] then
    unsupported
      "box %d: all setformers are mutually lateral (cyclic references)"
      b.Qgm.b_id;
  let accesses =
    List.map
      (fun q ->
        (q.Qgm.q_id, access_plans t ~g ~env q (List.assoc q.Qgm.q_id !sargable)))
      plain_setformers
  in
  let joined =
    match
      enumerate_joins t ~g ~env ~quants:plain_setformers ~accesses
        ~join_preds:!join_preds
    with
    | p :: _ -> p
    | [] -> unsupported "no join plan for box %d" b.Qgm.b_id
  in
  (* lateral applies, in declaration order *)
  let joined =
    List.fold_left
      (fun outer qid -> apply_lateral_join t ~g ~env outer (Qgm.quant g qid))
      joined lateral_ids
  in
  (* subqueries as joins, applied in declaration order *)
  let with_subqueries =
    List.fold_left
      (fun plan (qid, inner) ->
        apply_subquery_join t ~g ~env plan (Qgm.quant g qid) inner)
      joined
      (List.rev !subquery_joins)
  in
  (* residual predicates; a disjunction containing subqueries becomes
     the OR operator *)
  let slotmap qc = slot_of with_subqueries qc in
  let compile_res e = compile_expr t ~g ~env ~slotmap e in
  let refs_subquery e =
    List.exists
      (fun r ->
        List.mem r subquery_ids
        ||
        match Hashtbl.find_opt g.Qgm.quants r with
        | Some qq -> qq.Qgm.q_type = Qgm.S
        | None -> false)
      (Qgm.quant_refs e)
  in
  let or_preds, plain =
    List.partition
      (fun e ->
        match e with
        | Qgm.Bin (Ast.Or, _, _) -> Qgm.contains_quantified e || refs_subquery e
        | _ -> false)
      !residual
  in
  let filtered =
    let info = plan_info t g with_subqueries in
    let p1 =
      if plain = [] then with_subqueries
      else Cost.mk_filter ~info (List.map compile_res plain) with_subqueries
    in
    List.fold_left
      (fun plan e ->
        let rec disj = function
          | Qgm.Bin (Ast.Or, a, b) -> disj a @ disj b
          | e -> [ e ]
        in
        Cost.mk_or_filter ~info:(plan_info t g plan)
          (List.map compile_res (disj e))
          plan)
      p1 or_preds
  in
  filtered

(* --- GROUP BY --- *)

and compile_group_by t ~g ~env (b : Qgm.box) (keys : Qgm.expr list) : plan =
  let input_q =
    match Qgm.setformers b with
    | [ q ] -> q
    | _ -> unsupported "GROUP BY box %d must have one input" b.Qgm.b_id
  in
  (* predicates on a GROUP BY box filter its input before grouping *)
  let preds = List.map (fun (p : Qgm.pred) -> p.Qgm.p_expr) b.Qgm.b_preds in
  let input =
    match access_plans t ~g ~env input_q preds with
    | p :: _ -> p
    | [] -> unsupported "no access plan for GROUP BY input"
  in
  let slotmap qc = slot_of input qc in
  let key_slots =
    List.map
      (fun k ->
        match compile_expr t ~g ~env ~slotmap k with
        | RCol s -> s
        | _ -> unsupported "GROUP BY key must be a column of the input box")
      keys
  in
  (* aggregates in head order *)
  let aggs =
    List.filter_map
      (fun hc ->
        match hc.Qgm.hc_expr with
        | Some (Qgm.Agg (name, distinct, arg)) ->
          let slot =
            Option.map
              (fun a ->
                match compile_expr t ~g ~env ~slotmap a with
                | RCol s -> s
                | _ -> unsupported "aggregate argument must be an input column")
              arg
          in
          Some (name, distinct, slot)
        | _ -> None)
      b.Qgm.b_head
  in
  (* choose between hash grouping and sort-based (streamed) grouping *)
  let info = plan_info t g input in
  let hash_plan = Cost.mk_group ~keys:key_slots ~aggs ~sorted:false ~info input in
  let plans =
    if key_slots = [] then [ hash_plan ]
    else begin
      let want = List.map (fun s -> (s, Ast.Asc)) key_slots in
      let payload = Star.make_payload ~plan:input ~keys:want () in
      let sorted_inputs = Star.invoke t.sctx "Ordered" payload in
      hash_plan
      :: List.map
           (fun si -> Cost.mk_group ~keys:key_slots ~aggs ~sorted:true ~info si)
           sorted_inputs
    end
  in
  let best =
    List.fold_left
      (fun (best : plan) p -> if p.props.p_cost < best.props.p_cost then p else best)
      (List.hd plans) (List.tl plans)
  in
  (* group output slots: keys (provenance preserved), then aggregates;
     map the head through *)
  let k = List.length key_slots in
  let head_exprs =
    List.map
      (fun hc ->
        match hc.Qgm.hc_expr with
        | Some (Qgm.Agg (name, distinct, arg)) ->
          let slot =
            Option.map
              (fun a ->
                match compile_expr t ~g ~env ~slotmap a with
                | RCol s -> s
                | _ -> assert false)
              arg
          in
          let rec idx i = function
            | [] -> unsupported "aggregate not found in GROUP output"
            | (n, d, s) :: rest ->
              if n = name && d = distinct && s = slot then i else idx (i + 1) rest
          in
          RCol (k + idx 0 aggs)
        | Some (Qgm.Col _ as e) -> (
          match compile_expr t ~g ~env ~slotmap e with
          | RCol s ->
            let rec key_idx i = function
              | [] -> unsupported "head column of GROUP BY is not grouped"
              | ks :: rest -> if ks = s then i else key_idx (i + 1) rest
            in
            RCol (key_idx 0 key_slots)
          | _ -> unsupported "GROUP BY head column")
        | Some _ -> unsupported "complex expressions in GROUP BY box head"
        | None -> unsupported "GROUP BY head column without expression")
      b.Qgm.b_head
  in
  let slots =
    Array.of_list
      (List.map
         (function
           | RCol i when i < Array.length best.props.p_slots -> best.props.p_slots.(i)
           | _ -> computed_slot)
         head_exprs)
  in
  let identity =
    List.length head_exprs = Array.length best.props.p_slots
    && List.mapi (fun i e -> e = RCol i) head_exprs |> List.for_all Fun.id
  in
  clamp_box_card t b
    (if identity then best else Cost.mk_project ~slots head_exprs best)

(* --- set operations --- *)

and compile_set_op t ~g ~env (b : Qgm.box) (op : Ast.set_op) (all : bool) : plan =
  let arms =
    List.map
      (fun q ->
        match access_plans t ~g ~env q [] with
        | p :: _ -> p
        | [] -> unsupported "no plan for set-operation arm")
      (Qgm.setformers b)
  in
  match arms with
  | [ l; r ] ->
    let combined =
      match op with
      | Ast.Union ->
        let u = Cost.mk_setop Union_all l r in
        if all then u else Cost.mk_distinct ~info:Cost.no_info u
      | Ast.Intersect -> Cost.mk_setop (Intersect_op all) l r
      | Ast.Except -> Cost.mk_setop (Except_op all) l r
    in
    (* relabel to the box's own quantifier space: the parent relabels
       again, so provenance resets to computed *)
    {
      combined with
      props =
        {
          combined.props with
          p_slots = Array.map (fun _ -> computed_slot) combined.props.p_slots;
        };
    }
  | _ -> unsupported "set operation box %d must have two inputs" b.Qgm.b_id

(* --- VALUES --- *)

and compile_values t ~g ~env (b : Qgm.box) rows : plan =
  let no_slots (_ : int * int) = None in
  let rrows =
    List.map (List.map (compile_expr t ~g ~env ~slotmap:no_slots)) rows
  in
  Cost.mk_values rrows ~width:(Qgm.arity b)

(* --- table functions --- *)

and compile_table_fn t ~g ~env (b : Qgm.box) name args : plan =
  if Functions.find_table_fn t.fns name = None then
    unsupported "table function %s is not registered" name;
  let inputs =
    List.map
      (fun q ->
        match access_plans ~all_cols:true t ~g ~env q [] with
        | p :: _ -> p
        | [] -> unsupported "no plan for table-function input")
      (Qgm.setformers b)
  in
  let no_slots (_ : int * int) = None in
  let rargs = List.map (compile_expr t ~g ~env ~slotmap:no_slots) args in
  Cost.mk_table_fn ~name ~args:rargs ~quant:(-1) ~width:(Qgm.arity b) inputs

(* --- CHOOSE --- *)

and compile_choose t ~g ~env (b : Qgm.box) : plan =
  (* cost both alternatives, keep the cheaper: the optimizer eliminates
     the CHOOSE operation (section 5) *)
  let alts =
    List.map
      (fun q ->
        match access_plans t ~g ~env q [] with
        | p :: _ -> p
        | [] -> unsupported "no plan for CHOOSE alternative")
      b.Qgm.b_quants
  in
  match alts with
  | [] -> unsupported "empty CHOOSE box"
  | p :: rest ->
    List.fold_left
      (fun (best : plan) c -> if c.props.p_cost < best.props.p_cost then c else best)
      p rest

(* --- recursion --- *)

and compile_recursive t ~g ~env (b : Qgm.box) : plan =
  (* expected shape: identity SELECT over a UNION whose arms divide into
     seed (no cycle back) and step (ranges over this box) *)
  let fail () =
    unsupported
      "unsupported recursion shape at box %d (expected WITH RECURSIVE name AS \
       (seed UNION step))"
      b.Qgm.b_id
  in
  match b.Qgm.b_kind, b.Qgm.b_quants with
  | Qgm.Select, [ uq ] -> (
    let ubox = Qgm.box g uq.Qgm.q_input in
    match ubox.Qgm.b_kind with
    | Qgm.Set_op (Ast.Union, all) ->
      let reaches src =
        let seen = Hashtbl.create 8 in
        let rec go id =
          id = b.Qgm.b_id
          || (not (Hashtbl.mem seen id))
             && begin
               Hashtbl.replace seen id ();
               List.exists (fun q -> go q.Qgm.q_input) (Qgm.box g id).Qgm.b_quants
             end
        in
        go src
      in
      let seeds, steps =
        List.partition (fun a -> not (reaches a.Qgm.q_input)) (Qgm.setformers ubox)
      in
      if seeds = [] || steps = [] then fail ();
      let rec_ctx = (b.Qgm.b_id, Qgm.arity b) :: env.e_rec in
      let compile_arm ctx_rec (a : Qgm.quant) =
        let p, params = compile_box t ~g ~rec_ctx:ctx_rec a.Qgm.q_input in
        if Array.length params = 0 then p
        else begin
          let remap = Array.map (fun key -> intern_param env key) params in
          renumber_params (fun i -> remap.(i)) p
        end
      in
      let union_plans plans =
        match plans with
        | [] -> fail ()
        | p :: rest -> List.fold_left (fun a b -> Cost.mk_setop Union_all a b) p rest
      in
      let seed = union_plans (List.map (compile_arm env.e_rec) seeds) in
      let step = union_plans (List.map (compile_arm rec_ctx) steps) in
      let fx = Cost.mk_fixpoint ~distinct:(not all) seed step in
      { fx with props = { fx.props with p_slots = Array.map (fun _ -> computed_slot) fx.props.p_slots } }
    | _ -> fail ())
  | _ -> fail ()

(* ------------------------------------------------------------------ *)
(* Recursive-delta access: quantifiers over a box being fixpointed     *)
(* ------------------------------------------------------------------ *)

(* access_plans handles the base-table and derived cases; a quantifier
   over a box in rec_ctx lands in the derived case, which would loop.
   Intercept it here by overriding compile_box for those boxes. *)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Optimizes the whole QGM; the resulting plan computes the top box's
    head columns. *)
let optimize t (g : Qgm.t) : plan =
  (* property inference first: the plan generator consults it for key
     joins and row bounds.  Statistics are trusted here — a cost
     estimate may be wrong, unlike a rewrite, and analyzed intervals
     sharpen range bounds considerably.  Advisory only: any inference
     failure falls back to uninformed costing. *)
  if t.use_analysis then begin
    let t0 = Sys.time () in
    (try t.analysis <- Some (Infer.analyze ~trust_stats:true ~catalog:t.cat g)
     with exn ->
       Logs.debug (fun m ->
           m "optimizer: property inference failed: %s" (Printexc.to_string exn));
       t.analysis <- None);
    t.analysis_secs <- Sys.time () -. t0
  end
  else begin
    t.analysis <- None;
    t.analysis_secs <- 0.0
  end;
  let compile () =
    let plan, params = compile_box t ~g g.Qgm.top in
    if Array.length params > 0 then
      unsupported "top-level query has unbound correlation parameters";
    plan
  in
  let tracer = t.sctx.Star.tracer in
  if not (Sb_obs.Trace.enabled tracer) then compile ()
  else begin
    let inv0 = t.sctx.Star.invocations in
    let gen0 = t.sctx.Star.plans_generated in
    let pru0 = t.sctx.Star.plans_pruned in
    let sub0 = t.enum_subsets and pair0 = t.enum_pairs in
    Sb_obs.Trace.with_span tracer "optimize.generate" (fun () ->
        let plan = compile () in
        Sb_obs.Trace.add_attr tracer "star_expansions"
          (string_of_int (t.sctx.Star.invocations - inv0));
        Sb_obs.Trace.add_attr tracer "plans_generated"
          (string_of_int (t.sctx.Star.plans_generated - gen0));
        Sb_obs.Trace.add_attr tracer "plans_pruned"
          (string_of_int (t.sctx.Star.plans_pruned - pru0));
        Sb_obs.Trace.add_attr tracer "enum_subsets"
          (string_of_int (t.enum_subsets - sub0));
        Sb_obs.Trace.add_attr tracer "enum_pairs"
          (string_of_int (t.enum_pairs - pair0));
        plan)
  end
