(** STARs — STrategy Alternative Rules (section 6, [LOHM88]).

    Executable plans are defined by a grammar-like set of parameterized
    production rules: a STAR has a name (a nonterminal), parameters (the
    {!payload}), and one or more alternative definitions in terms of
    LOLEPOPs or other STARs, gated by IF-conditions and ranks.  The
    three aspects the paper keeps orthogonal — the STAR array, the rule
    evaluator ({!invoke}), and the search {!strategy} — are separate
    values, so each can be replaced independently. *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
open Sb_storage

(** Parameters passed to a STAR invocation; [make_payload] fills
    defaults for the fields an invocation does not use. *)
type payload = {
  pl_quant : int;  (** QGM quantifier the plans are for *)
  pl_table : string;  (** base table (TableAccess) *)
  pl_stats : Stats.t;
  pl_cols : int list;  (** base columns needed *)
  pl_preds : Plan.rexpr list;  (** predicates over base column indices *)
  pl_info : Cost.slot_info;
  pl_attachments : Access_method.instance list;
  pl_outer : Plan.plan option;
  pl_inner : Plan.plan option;
  pl_kind : Plan.join_kind;
  pl_equi : (int * int) list;
  pl_pred : Plan.rexpr option;
  pl_kind_pred : Plan.rexpr option;
  pl_corr : Plan.rexpr list;
  pl_bound : bool;  (** inner owns its parameter space (subquery joins) *)
  pl_keys : (int * Ast.order_dir) list;  (** required order (glue) *)
  pl_site : string;  (** required site (glue) *)
  pl_plan : Plan.plan option;  (** subject of glue STARs *)
}

val make_payload :
  ?quant:int ->
  ?table:string ->
  ?stats:Stats.t ->
  ?cols:int list ->
  ?preds:Plan.rexpr list ->
  ?info:Cost.slot_info ->
  ?attachments:Access_method.instance list ->
  ?outer:Plan.plan ->
  ?inner:Plan.plan ->
  ?kind:Plan.join_kind ->
  ?equi:(int * int) list ->
  ?pred:Plan.rexpr ->
  ?kind_pred:Plan.rexpr ->
  ?corr:Plan.rexpr list ->
  ?bound:bool ->
  ?keys:(int * Ast.order_dir) list ->
  ?site:string ->
  ?plan:Plan.plan ->
  unit ->
  payload

(** Recognizes an index probe for an attachment given the available
    predicates (over base column indices): returns the probe, its
    selectivity (negative = compute from statistics), and the predicates
    it fully absorbs. *)
type probe_matcher =
  Access_method.instance ->
  Plan.rexpr list ->
  (Plan.probe_spec * float * Plan.rexpr list) option

type ctx = {
  catalog : Catalog.t;
  stars : (string, star) Hashtbl.t;  (** the STAR array *)
  mutable strategy : strategy;
  mutable probe_matchers : probe_matcher list;
  site_of : string -> string;
  mutable invocations : int;  (** STAR invocations (bench accounting) *)
  mutable plans_generated : int;  (** plans produced before pruning *)
  mutable plans_pruned : int;  (** plans discarded by the strategy *)
  mutable tracer : Sb_obs.Trace.t;  (** spans per expansion when enabled *)
  mutable governor : Sb_resil.Limits.gov option;
      (** per-query plan-node budget, charged on every expansion *)
}

and star = { star_name : string; mutable alternatives : alternative list }

and alternative = {
  alt_name : string;
  alt_rank : int;  (** alternatives above the strategy's rank are pruned *)
  alt_cond : ctx -> payload -> bool;
  alt_produce : ctx -> payload -> Plan.plan list;
}

and strategy = {
  st_name : string;
  st_max_rank : int;
  st_order : alternative list -> alternative list;
      (** evaluation order — the prioritized-queue mechanism *)
  st_prune : Plan.plan list -> Plan.plan list;
      (** which generated plans survive (interesting-property pruning) *)
}

exception Opt_error of string

(** Evaluates a STAR: filters alternatives by rank and condition, orders
    them per the strategy, evaluates each, and prunes the union.
    @raise Opt_error if no plan is produced. *)
val invoke : ctx -> string -> payload -> Plan.plan list

(** Registers a STAR, merging alternatives if the name exists. *)
val register : ctx -> string -> alternative list -> unit

val star_count : ctx -> int
val alternative_count : ctx -> int

(** Does [have] satisfy [want] as an order prefix? *)
val order_satisfies :
  have:(int * Ast.order_dir) list -> want:(int * Ast.order_dir) list -> bool

(** Does [q] strictly dominate [p] — same site, no worse on cost,
    cardinality, distinctness and [p]'s order, strictly better on cost
    or cardinality? *)
val dominates : Plan.plan -> Plan.plan -> bool

(** Keep the cheapest plan overall plus the cheapest per interesting
    property combination (order, site, distinct), after discarding
    strictly {!dominates}-dominated plans. *)
val interesting_prune : ?max_plans:int -> Plan.plan list -> Plan.plan list

(** Rank-ordered alternatives, interesting-property pruning (default). *)
val default_strategy : strategy

(** First applicable rank-0 alternative only. *)
val greedy_strategy : strategy

val create :
  ?strategy:strategy -> catalog:Catalog.t -> site_of:(string -> string) -> unit -> ctx
