(** Registration-time static verification of DSL rules.

    [verify] reads a rule's semantics off its declarative form and
    classifies it:

    - {b Verified} — well-formed, and every side-condition of every
      action is discharged: structurally (the pattern contains the atom
      that establishes it) or by the {!Sb_analysis.Prover} under
      schema-only facts (schematic instantiation of the matched
      predicate shapes).
    - {b Conditional} — sound only under obligations that depend on the
      concrete graph (key coverage, NOT NULL, sharing); a runtime guard
      atom is auto-inserted for each, positioned so a failing guard
      backtracks to the next match candidate exactly like the
      hand-written checks it replaces.
    - {b Rejected} — an obligation is refuted or cannot be guarded; the
      status names it and sketches a counterexample.  {!Corona} turns
      registration of a rejected rule into a structured [Err].

    The obligation catalog (DESIGN §6.6): scope, correlation
    containment, quantifier multiplicity, boundary safety, sharing,
    null-intolerance (strictness), key/duplicate preservation,
    implication of derived predicates, justified removal, and
    termination (no action may re-enable its own condition). *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
module Prover = Sb_analysis.Prover
open Dsl

type obligation =
  | O_scope  (** every metavariable bound before use, no rebinding *)
  | O_correlation  (** moved predicate confined to the moved-through quantifier *)
  | O_quant_type  (** movement/elimination only across plain F quantifiers *)
  | O_boundary  (** the target box can safely absorb the predicate *)
  | O_share  (** the target box has no other consumers *)
  | O_strict  (** null-intolerance where NULLs are padded or dropped *)
  | O_key  (** duplicate preservation when a quantifier is removed *)
  | O_implied  (** a derived predicate follows from the matched ones *)
  | O_always_true  (** a removed predicate filters nothing *)
  | O_termination  (** the action does not re-enable its own condition *)

let obligation_to_string = function
  | O_scope -> "scope"
  | O_correlation -> "correlation"
  | O_quant_type -> "quant-type"
  | O_boundary -> "boundary"
  | O_share -> "share"
  | O_strict -> "strict"
  | O_key -> "key"
  | O_implied -> "implied"
  | O_always_true -> "always-true"
  | O_termination -> "termination"

type status =
  | Verified
  | Conditional of obligation list
  | Rejected of { obligation : obligation; sketch : string }

let status_to_string = function
  | Verified -> "Verified"
  | Conditional obls ->
    Printf.sprintf "Conditional(%s)"
      (String.concat "," (List.map obligation_to_string obls))
  | Rejected { obligation; sketch } ->
    Printf.sprintf "Rejected(%s): %s" (obligation_to_string obligation) sketch

(** The verifier's full verdict: the status plus the runtime guard atoms
    to append to the pattern (empty unless [Conditional]). *)
type verdict = { v_status : status; v_guards : atom list }

let rejected obligation sketch =
  { v_status = Rejected { obligation; sketch }; v_guards = [] }

(* ------------------------------------------------------------------ *)
(* Well-formedness: metavariable sorts and scope                       *)
(* ------------------------------------------------------------------ *)

type sort = S_pred | S_quant | S_box | S_expr | S_op | S_int

let sort_name = function
  | S_pred -> "pred"
  | S_quant -> "quant"
  | S_box -> "box"
  | S_expr -> "expr"
  | S_op -> "op"
  | S_int -> "int"

let binds_sorted = function
  | Each_pred p -> [ (p, S_pred) ]
  | Each_eq_col_pred { pred; keep; drop; col } ->
    [ (pred, S_pred); (keep, S_quant); (drop, S_quant); (col, S_int) ]
  | Each_eq_pair { left; right } -> [ (left, S_expr); (right, S_expr) ]
  | Each_restriction { col; op; lit } ->
    [ (col, S_expr); (op, S_op); (lit, S_expr) ]
  | Sole_quant_ref { quant; _ } -> [ (quant, S_quant) ]
  | Input_box { box; _ } -> [ (box, S_box) ]
  | Inline { out; _ } | Replica { out; _ } -> [ (out, S_expr) ]
  | _ -> []

let uses_sorted = function
  | Each_pred _ | Each_eq_col_pred _ | Each_eq_pair _ | Each_restriction _
  | Box_kind _ ->
    []
  | Pred_matches (p, _) | Movable p | Not_marked (p, _) -> [ (p, S_pred) ]
  | Sole_quant_ref { pred; _ } -> [ (pred, S_pred) ]
  | Quant_parent_here q | Quant_type_f q -> [ (q, S_quant) ]
  | Input_box { quant; _ } -> [ (quant, S_quant) ]
  | Kind_is (b, _) | Plain_select b | Not_top b | Single_user b
  | Head_all_exprs b | Not_recursive b ->
    [ (b, S_box) ]
  | Group_keys_passthrough { pred; box } -> [ (pred, S_pred); (box, S_box) ]
  | Inline { pred; quant; _ } -> [ (pred, S_pred); (quant, S_quant) ]
  | Replica { left; right; col; op; lit; _ } ->
    [ (left, S_expr); (right, S_expr); (col, S_expr); (op, S_op); (lit, S_expr) ]
  | Not_exists_here e | Not_already_pushed e -> [ (e, S_expr) ]
  | Both_quants_here (a, b) | Same_input (a, b) ->
    [ (a, S_quant); (b, S_quant) ]
  | Guard_unique { quant; col } | Guard_not_null { quant; col } ->
    [ (quant, S_quant); (col, S_int) ]
  | Guard_single_user b -> [ (b, S_box) ]
  | Guard_strict p -> [ (p, S_pred) ]

let action_uses_sorted = function
  | Remove_pred p | Mark_pred (p, _) -> [ (p, S_pred) ]
  | Add_pred_to { box; expr } -> [ (box, S_box); (expr, S_expr) ]
  | Add_pred_here e -> [ (e, S_expr) ]
  | Replicate_into_arms { pred; quant; box } ->
    [ (pred, S_pred); (quant, S_quant); (box, S_box) ]
  | Redirect_refs { drop; keep } -> [ (drop, S_quant); (keep, S_quant) ]
  | Drop_reflexive_eqs | Remove_preds_matching _ -> []
  | Remove_quant q -> [ (q, S_quant) ]

(** Scope and sort check.  [Error (obligation, sketch)] on the first
    violation. *)
let well_formed (r : rule) =
  let exception Bad of string in
  try
    let bound = Hashtbl.create 8 in
    let use where (v, s) =
      match Hashtbl.find_opt bound v with
      | None ->
        raise
          (Bad
             (Printf.sprintf "%s references unbound metavariable '%s'" where v))
      | Some s' when s' <> s ->
        raise
          (Bad
             (Printf.sprintf "%s uses '%s' as a %s but it is bound as a %s"
                where v (sort_name s) (sort_name s')))
      | Some _ -> ()
    in
    List.iter
      (fun a ->
        List.iter (use (atom_name a)) (uses_sorted a);
        List.iter
          (fun (v, s) ->
            if Hashtbl.mem bound v then
              raise
                (Bad (Printf.sprintf "metavariable '%s' is bound twice" v));
            Hashtbl.replace bound v s)
          (binds_sorted a))
      r.pattern;
    List.iter
      (fun act -> List.iter (use (action_name act)) (action_uses_sorted act))
      r.actions;
    Ok ()
  with Bad sketch -> Error sketch

(* ------------------------------------------------------------------ *)
(* Schematic prover queries                                            *)
(* ------------------------------------------------------------------ *)

(** A representative concretization of a shape pattern, over fresh
    schematic columns (all nullable, nothing else known). *)
let concretize = function
  | E_true -> Some (Qgm.Lit (Sb_storage.Value.Bool true))
  | E_null_lit -> Some (Qgm.Lit Sb_storage.Value.Null)
  | E_is_null -> Some (Qgm.Is_null (Qgm.Col (1, 0)))
  | E_cmp -> Some (Qgm.Bin (Ast.Lt, Qgm.Col (1, 0), Qgm.Lit (Sb_storage.Value.Int 7)))
  | E_any -> None

(** The shape the pattern establishes for predicate metavariable [p]
    ([E_any] when unconstrained). *)
let shape_of pattern p =
  List.fold_left
    (fun acc a ->
      match a with Pred_matches (p', ep) when p' = p -> ep | _ -> acc)
    E_any pattern

(** Replica soundness, discharged schematically: for every comparison
    operator, [x = y ∧ x op v ⊢ y op v] (and the mirrored orientation)
    must be proved under schema-only facts.  The Neq case is what the
    prover's disequality classes exist for. *)
let replica_implied () =
  let x = Qgm.Col (1, 0) and y = Qgm.Col (2, 0) in
  let v = Qgm.Lit (Sb_storage.Value.Int 7) in
  let ops = [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  List.for_all
    (fun op ->
      Prover.implies
        [ Qgm.Bin (Ast.Eq, x, y); Qgm.Bin (op, x, v) ]
        (Qgm.Bin (op, y, v))
      = Prover.Proved
      && Prover.implies
           [ Qgm.Bin (Ast.Eq, x, y); Qgm.Bin (op, y, v) ]
           (Qgm.Bin (op, x, v))
         = Prover.Proved)
    ops

(* ------------------------------------------------------------------ *)
(* Obligation derivation and discharge                                 *)
(* ------------------------------------------------------------------ *)

(** Everything below pattern-matches the rule's atoms.  [has] is a
    structural discharge: the obligation holds because the pattern can
    only match graphs where it does. *)
let verify (r : rule) : verdict =
  match well_formed r with
  | Error sketch -> rejected O_scope sketch
  | Ok () ->
    let has a = List.mem a r.pattern in
    let has_action a = List.mem a r.actions in
    let exception Reject of obligation * string in
    (* accumulated unproved-but-guardable obligations, with their guards *)
    let conditional : (obligation * atom) list ref = ref [] in
    let guard obl g =
      if (not (has g)) && not (List.mem (obl, g) !conditional) then
        conditional := !conditional @ [ (obl, g) ]
    in
    let inline_of e =
      List.find_map
        (function
          | Inline { pred; quant; out } when out = e -> Some (pred, quant)
          | _ -> None)
        r.pattern
    in
    let replica_of e =
      List.find_map
        (function
          | Replica { left; right; col; op; lit; out } when out = e ->
            Some (left, right, col, op, lit)
          | _ -> None)
        r.pattern
    in
    let eq_col_witness =
      List.find_map
        (function
          | Each_eq_col_pred { pred; keep; drop; col } ->
            Some (pred, keep, drop, col)
          | _ -> None)
        r.pattern
    in
    let redirect =
      List.find_map
        (function Redirect_refs { drop; keep } -> Some (drop, keep) | _ -> None)
        r.actions
    in
    (* is [Remove_pred p] justified by the redundant-join cluster: p is
       the equality witness relating the redirected quantifiers? *)
    let cluster_removes p =
      match (eq_col_witness, redirect) with
      | Some (p', keep, drop, _), Some (drop', keep') ->
        p' = p && keep = keep' && drop = drop'
      | _ -> false
    in
    let moved_away p =
      List.exists
        (function
          | Add_pred_to { expr; _ } -> (
            match inline_of expr with Some (p', _) -> p' = p | None -> false)
          | Replicate_into_arms { pred; _ } -> pred = p
          | _ -> false)
        r.actions
    in
    (* shared obligations of any predicate move below quantifier [q] *)
    let check_move ~what p q =
      if not (has (Movable p)) then
        raise
          (Reject
             ( O_correlation,
               Printf.sprintf
                 "%s: '%s' may consume a subquery or aggregate; moving it \
                  changes where the consumption is evaluated (no movable \
                  atom)"
                 what p ));
      if not (has (Sole_quant_ref { pred = p; quant = q })) then
        raise
          (Reject
             ( O_correlation,
               Printf.sprintf
                 "%s: counterexample — '%s' also references a second \
                  quantifier whose binding is lost below '%s' (no \
                  sole-quant-ref atom)"
                 what p q ));
      if not (has (Quant_type_f q)) then
        raise
          (Reject
             ( O_quant_type,
               Printf.sprintf
                 "%s: counterexample — '%s' could be an existential or \
                  universal quantifier; filtering its input changes the \
                  subquery's truth value (no quant-type-f atom)"
                 what q ))
    in
    let check_target ~what q l =
      if not (has (Input_box { quant = q; box = l })) then
        raise
          (Reject
             ( O_boundary,
               Printf.sprintf
                 "%s: target box '%s' is not bound as the input of '%s'; \
                  the predicate would land on an unrelated box"
                 what l q ))
    in
    let check_share l =
      (* runtime-checkable, so guardable rather than fatal *)
      if not (has (Single_user l)) then guard O_share (Guard_single_user l)
    in
    let check_action = function
      | Add_pred_to { box = l; expr = e } -> (
        match inline_of e with
        | None ->
          raise
            (Reject
               ( O_implied,
                 Printf.sprintf
                   "add-pred-to: '%s' is not the inlining of a matched \
                    predicate; nothing shows it filters only rows the \
                    original rejected"
                   e ))
        | Some (p, q) ->
          check_move ~what:"push-down" p q;
          check_target ~what:"push-down" q l;
          check_share l;
          let plain = has (Plain_select l) in
          let group =
            has (Group_keys_passthrough { pred = p; box = l })
            && has (Not_recursive l)
          in
          let ext = has (Kind_is (l, K_ext)) in
          if plain || group then ()
          else if ext then begin
            (* NULL-padding boundary: the predicate must be strict *)
            match concretize (shape_of r.pattern p) with
            | Some ce -> (
              match Prover.strict_in_refs ce with
              | Prover.Strict -> ()
              | Prover.Non_strict ->
                raise
                  (Reject
                     ( O_strict,
                       Printf.sprintf
                         "counterexample — a NULL-padded row satisfies \
                          '%s' (e.g. IS NULL is TRUE on the padding), so \
                          filtering before the padding keeps rows the \
                          original dropped, and vice versa"
                         p ))
              | Prover.Strict_unknown -> guard O_strict (Guard_strict p))
            | None -> guard O_strict (Guard_strict p)
          end
          else
            raise
              (Reject
                 ( O_boundary,
                   Printf.sprintf
                     "push-down: no atom establishes that '%s' absorbs \
                      predicates (plain-select, group-keys-passthrough + \
                      not-recursive, or a guarded NULL-padding boundary)"
                     l )))
      | Add_pred_here e -> (
        match replica_of e with
        | None ->
          raise
            (Reject
               ( O_implied,
                 Printf.sprintf
                   "add-pred-here: '%s' is not a replica of matched \
                    predicates; an unimplied conjunct drops rows"
                   e ))
        | Some (left, right, col, op, lit) ->
          if
            not
              (has (Each_eq_pair { left; right })
              && has (Each_restriction { col; op; lit }))
          then
            raise
              (Reject
                 ( O_implied,
                   "add-pred-here: the replica's hypotheses (the equality \
                    and the restriction) are not matched predicates of the \
                    box" ));
          if not (replica_implied ()) then
            raise
              (Reject
                 ( O_implied,
                   "add-pred-here: the prover could not discharge x = y ∧ \
                    x op v ⊢ y op v for every comparison operator" ));
          if not (has (Not_exists_here e) && has (Not_already_pushed e)) then
            raise
              (Reject
                 ( O_termination,
                   Printf.sprintf
                     "counterexample — the rule re-derives '%s' on every \
                      pass (or ping-pongs with push-down) and only the \
                      firing budget stops it (missing not-exists-here / \
                      not-already-pushed atoms)"
                     e )))
      | Replicate_into_arms { pred = p; quant = q; box = l } ->
        check_move ~what:"set-op replicate" p q;
        check_target ~what:"set-op replicate" q l;
        check_share l;
        if not (has (Kind_is (l, K_set_op)) && has (Not_recursive l)) then
          raise
            (Reject
               ( O_boundary,
                 Printf.sprintf
                   "set-op replicate: '%s' must be matched as a \
                    non-recursive set operation; replicating into a \
                    recursive union changes its fixpoint"
                   l ));
        let marked =
          List.exists
            (function
              | Not_marked (p', m) -> p' = p && has_action (Mark_pred (p, m))
              | _ -> false)
            r.pattern
        in
        if not marked then
          raise
            (Reject
               ( O_termination,
                 "counterexample — the original predicate is kept, so \
                  without a not-marked/mark-pred pair the rule fires on it \
                  again every pass" ))
      | Remove_pred p ->
        if not (moved_away p || cluster_removes p) then begin
          match concretize (shape_of r.pattern p) with
          | Some ce when Prover.const_truth ce = Some true -> ()
          | _ ->
            raise
              (Reject
                 ( O_always_true,
                   Printf.sprintf
                     "counterexample — a row that fails '%s' passes after \
                      its removal; removal is only justified for \
                      predicates provably TRUE, a pushed-down move, or a \
                      witnessed redundant join"
                     p ))
        end
      | Remove_preds_matching ep -> (
        (* the pattern must witness the shape it removes, or the
           condition stays true after the action and the rule spins *)
        if
          not
            (List.exists
               (function Pred_matches (_, ep') -> ep' = ep | _ -> false)
               r.pattern)
        then
          raise
            (Reject
               ( O_termination,
                 "counterexample — the pattern never matches the removed \
                  shape, so a firing can make no progress and the \
                  condition re-enables itself" ));
        match concretize ep with
        | Some ce when Prover.const_truth ce = Some true -> ()
        | Some _ ->
          raise
            (Reject
               ( O_always_true,
                 "counterexample — the removed shape is not provably TRUE \
                  (e.g. IS NULL fails on a non-NULL row), so removal adds \
                  rows" ))
        | None ->
          raise
            (Reject
               ( O_always_true,
                 "remove-preds-matching: an unconstrained shape removes \
                  predicates the verifier cannot bound" )))
      | Redirect_refs { drop; keep } -> (
        match eq_col_witness with
        | Some (_, keep', drop', col) when keep = keep' && drop = drop' ->
          if not (has (Both_quants_here (keep, drop))) then
            raise
              (Reject
                 ( O_quant_type,
                   "counterexample — one quantifier could be existential; \
                    collapsing it multiplies or drops rows (no \
                    both-quants-here atom)" ));
          if not (has (Same_input (keep, drop))) then
            raise
              (Reject
                 ( O_key,
                   "counterexample — the quantifiers range over different \
                    inputs, so equal key values still name different rows \
                    (no same-input atom)" ));
          (* graph-dependent: key coverage and NOT NULL become runtime
             guards, in the same position (and order) as the hand-written
             derives_unique / derives_not_null checks *)
          guard O_key (Guard_unique { quant = keep; col });
          guard O_strict (Guard_not_null { quant = keep; col })
        | _ ->
          raise
            (Reject
               ( O_key,
                 "redirect-refs: no matched equality predicate witnesses \
                  that the two quantifiers denote the same row" )))
      | Drop_reflexive_eqs ->
        if redirect = None then
          raise
            (Reject
               ( O_strict,
                 "counterexample — e = e is NULL (not TRUE) on a NULL row; \
                  dropping reflexive equalities is only sound after a \
                  redirect whose key column is guarded NOT NULL" ))
      | Remove_quant q -> (
        match redirect with
        | Some (drop, _) when drop = q -> ()
        | _ ->
          raise
            (Reject
               ( O_key,
                 Printf.sprintf
                   "counterexample — references to '%s' dangle after \
                    removal, and dropping an un-redirected quantifier \
                    changes duplicate counts (no redirect-refs action)"
                   q )))
      | Mark_pred _ -> ()
    in
    (try
       List.iter check_action r.actions;
       if r.actions = [] then
         raise
           (Reject
              (O_termination, "a rule with no actions can never make progress"));
       let obls =
         List.fold_left
           (fun acc (o, _) -> if List.mem o acc then acc else acc @ [ o ])
           [] !conditional
       in
       let guards = List.map snd !conditional in
       if obls = [] then { v_status = Verified; v_guards = [] }
       else { v_status = Conditional obls; v_guards = guards }
     with Reject (obligation, sketch) -> rejected obligation sketch)
