(** The built-in rule families ported to the DSL.

    These are declarative re-statements of [Rules_predicate] and
    [Rules_redundant]; compiled, they rewrite byte-identically to the
    native originals (same candidate selection, same mutations, same
    fresh-id allocation).  Note what is {e missing} from
    [eliminate_redundant_join]: the hand-written
    [derives_unique]/[derives_not_null] prover checks.  The verifier
    derives those obligations from the [Redirect_refs]/[Remove_quant]
    actions and auto-inserts equivalent runtime guards in the same
    position — the rule registers as [Conditional(key,strict)], and the
    guard an author could forget is exactly the one the system now
    writes for them. *)

open Dsl

(** Native: [Rules_predicate.push_into_select]. *)
let push_into_select =
  {
    name = "push_into_select";
    rule_class = "predicate";
    priority = 40;
    pattern =
      [
        Box_kind K_select_or_group_by;
        Each_pred "p";
        Movable "p";
        Sole_quant_ref { pred = "p"; quant = "q" };
        Quant_parent_here "q";
        Quant_type_f "q";
        Input_box { quant = "q"; box = "l" };
        Plain_select "l";
        Not_top "l";
        Single_user "l";
        Head_all_exprs "l";
        Inline { pred = "p"; quant = "q"; out = "e" };
      ];
    actions = [ Remove_pred "p"; Add_pred_to { box = "l"; expr = "e" } ];
  }

(** Native: [Rules_predicate.push_through_group_by]. *)
let push_through_group_by =
  {
    name = "push_through_group_by";
    rule_class = "predicate";
    priority = 40;
    pattern =
      [
        Box_kind K_select;
        Each_pred "p";
        Movable "p";
        Sole_quant_ref { pred = "p"; quant = "q" };
        Input_box { quant = "q"; box = "l" };
        Kind_is ("l", K_group_by);
        Quant_type_f "q";
        Single_user "l";
        Not_recursive "l";
        Group_keys_passthrough { pred = "p"; box = "l" };
        Inline { pred = "p"; quant = "q"; out = "e" };
      ];
    actions = [ Remove_pred "p"; Add_pred_to { box = "l"; expr = "e" } ];
  }

(** Native: [Rules_predicate.push_through_set_op]. *)
let push_through_set_op =
  {
    name = "push_through_set_op";
    rule_class = "predicate";
    priority = 35;
    pattern =
      [
        Box_kind K_select_or_group_by;
        Each_pred "p";
        Movable "p";
        Not_marked ("p", "pushed_setop");
        Sole_quant_ref { pred = "p"; quant = "q" };
        Input_box { quant = "q"; box = "l" };
        Kind_is ("l", K_set_op);
        Quant_type_f "q";
        Single_user "l";
        Not_recursive "l";
      ];
    actions =
      [
        Mark_pred ("p", "pushed_setop");
        Replicate_into_arms { pred = "p"; quant = "q"; box = "l" };
      ];
  }

(** Native: [Rules_predicate.replicate_restriction]. *)
let replicate_restriction =
  {
    name = "replicate_restriction";
    rule_class = "predicate";
    priority = 45;
    pattern =
      [
        Box_kind K_select;
        Each_eq_pair { left = "a"; right = "c" };
        Each_restriction { col = "x"; op = "o"; lit = "v" };
        Replica
          { left = "a"; right = "c"; col = "x"; op = "o"; lit = "v";
            out = "e" };
        Not_exists_here "e";
        Not_already_pushed "e";
      ];
    actions = [ Add_pred_here "e" ];
  }

(** Native: [Rules_predicate.drop_true]. *)
let drop_true_predicate =
  {
    name = "drop_true_predicate";
    rule_class = "predicate";
    priority = 70;
    pattern = [ Each_pred "p"; Pred_matches ("p", E_true) ];
    actions = [ Remove_preds_matching E_true ];
  }

(** Native: [Rules_redundant.eliminate_redundant_join] — written {e
    without} its uniqueness/NOT NULL safety checks; the verifier
    re-derives them as obligations and guards the rule. *)
let eliminate_redundant_join =
  {
    name = "eliminate_redundant_join";
    rule_class = "redundant";
    priority = 52;
    pattern =
      [
        Box_kind K_select;
        Each_eq_col_pred { pred = "p"; keep = "qk"; drop = "qd"; col = "i" };
        Both_quants_here ("qk", "qd");
        Same_input ("qk", "qd");
        Input_box { quant = "qk"; box = "t" };
        Kind_is ("t", K_base_table);
      ];
    actions =
      [
        Remove_pred "p";
        Redirect_refs { drop = "qd"; keep = "qk" };
        Drop_reflexive_eqs;
        Remove_quant "qd";
      ];
  }

(** Every ported rule, in the order the native families register them
    ([Base_rules.default_set] order within each class). *)
let all =
  [
    push_into_select;
    push_through_group_by;
    push_through_set_op;
    replicate_restriction;
    drop_true_predicate;
    eliminate_redundant_join;
  ]

(** The rule classes the DSL ports replace. *)
let classes = [ "predicate"; "redundant" ]
