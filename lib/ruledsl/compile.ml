(** Compiling a verified DSL rule into an ordinary {!Rule.t}.

    The matcher is backtracking first-solution over the pattern's atom
    list: generators enumerate candidates in the exact order the
    hand-written closures traverse them ([b_preds] list order,
    equality-major for replication), tests filter, and a failing test —
    including an auto-inserted runtime guard — backtracks to the next
    candidate.  The compiled condition asks whether a solution exists;
    the action re-solves and interprets the action templates against the
    winning binding.  Because the same candidate is selected and the
    same primitive mutations run in the same order (including fresh
    box/quantifier allocation), a compiled rule's rewrites are
    byte-identical to its native original's — which the fuzz oracle's
    DSL-vs-native configuration checks on generated workloads. *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
module Rule = Sb_rewrite.Rule
module Util = Sb_rewrite.Rules_util
open Dsl

type ctx = { g : Qgm.t; b : Qgm.box; catalog : Sb_storage.Catalog.t }

exception Binding_error of string

let get env v =
  match List.assoc_opt v env with
  | Some x -> x
  | None -> raise (Binding_error ("unbound metavariable " ^ v))

let pred_v env v =
  match get env v with V_pred p -> p | _ -> raise (Binding_error v)

let quant_v env v =
  match get env v with V_quant q -> q | _ -> raise (Binding_error v)

let box_v env v =
  match get env v with V_box b -> b | _ -> raise (Binding_error v)

let expr_v env v =
  match get env v with V_expr e -> e | _ -> raise (Binding_error v)

let op_v env v =
  match get env v with V_op o -> o | _ -> raise (Binding_error v)

let int_v env v =
  match get env v with V_int i -> i | _ -> raise (Binding_error v)

let kind_matches (k : Qgm.kind) = function
  | K_select -> k = Qgm.Select
  | K_group_by -> ( match k with Qgm.Group_by _ -> true | _ -> false)
  | K_set_op -> ( match k with Qgm.Set_op _ -> true | _ -> false)
  | K_base_table -> ( match k with Qgm.Base_table _ -> true | _ -> false)
  | K_ext -> ( match k with Qgm.Ext_op _ -> true | _ -> false)
  | K_select_or_group_by -> (
    match k with Qgm.Select | Qgm.Group_by _ -> true | _ -> false)

let epat_matches (e : Qgm.expr) = function
  | E_any -> true
  | E_true -> e = Qgm.Lit (Sb_storage.Value.Bool true)
  | E_null_lit -> e = Qgm.Lit Sb_storage.Value.Null
  | E_is_null -> ( match e with Qgm.Is_null (Qgm.Col _) -> true | _ -> false)
  | E_cmp -> (
    match e with
    | Qgm.Bin (op, Qgm.Col _, Qgm.Lit _) | Qgm.Bin (op, Qgm.Lit _, Qgm.Col _)
      ->
      Ast.is_comparison op
    | _ -> false)

(* the movability test of the native predicate rules *)
let movable (p : Qgm.pred) =
  (not (Qgm.contains_quantified p.Qgm.p_expr))
  && not (Qgm.contains_agg p.Qgm.p_expr)

(* the recursive anti-ping-pong check of the native replicate rule *)
let already_pushed g (e : Qgm.expr) =
  let rec pushed fuel (e : Qgm.expr) =
    fuel > 0
    &&
    match Qgm.quant_refs e with
    | [ qid ] -> (
      let q = Qgm.quant g qid in
      let l = Qgm.box g q.Qgm.q_input in
      match Util.inline_through g q e with
      | Some e' -> Util.pred_exists l e' || pushed (fuel - 1) e'
      | None -> false)
    | _ -> false
  in
  pushed 8 e

(* group-keys pass-through: every column the predicate references maps
   via the box head to a Col expression that is one of the group keys *)
let group_keys_passthrough (p : Qgm.pred) (l : Qgm.box) =
  match l.Qgm.b_kind with
  | Qgm.Group_by keys -> (
    try
      List.for_all
        (fun (_, i) ->
          match (Qgm.head_col l i).Qgm.hc_expr with
          | Some (Qgm.Col _ as e) -> List.mem e keys
          | _ -> false)
        (Qgm.col_refs p.Qgm.p_expr)
    with _ -> false)
  | _ -> false

(** All bindings an atom yields under [env]: [] is failure, a singleton
    is a passed test, several are generator candidates (document
    order). *)
let expand ctx env atom : binding list =
  let ok = [ env ] and fail = [] in
  let test c = if c then ok else fail in
  match atom with
  | Each_pred p ->
    List.map (fun pr -> (p, V_pred pr) :: env) ctx.b.Qgm.b_preds
  | Each_eq_col_pred { pred; keep; drop; col } ->
    List.filter_map
      (fun (pr : Qgm.pred) ->
        match pr.Qgm.p_expr with
        | Qgm.Bin (Ast.Eq, Qgm.Col (q1, i), Qgm.Col (q2, j))
          when q1 <> q2 && i = j ->
          Some
            ((pred, V_pred pr)
            :: (keep, V_quant (Qgm.quant ctx.g q1))
            :: (drop, V_quant (Qgm.quant ctx.g q2))
            :: (col, V_int i) :: env)
        | _ -> None)
      ctx.b.Qgm.b_preds
  | Each_eq_pair { left; right } ->
    List.filter_map
      (fun (pr : Qgm.pred) ->
        match pr.Qgm.p_expr with
        | Qgm.Bin (Ast.Eq, (Qgm.Col _ as a), (Qgm.Col _ as c)) when a <> c ->
          Some ((left, V_expr a) :: (right, V_expr c) :: env)
        | _ -> None)
      ctx.b.Qgm.b_preds
  | Each_restriction { col; op; lit } ->
    List.filter_map
      (fun (pr : Qgm.pred) ->
        match pr.Qgm.p_expr with
        | Qgm.Bin (o, (Qgm.Col _ as a), (Qgm.Lit _ as v))
          when Ast.is_comparison o ->
          Some ((col, V_expr a) :: (op, V_op o) :: (lit, V_expr v) :: env)
        | Qgm.Bin (o, (Qgm.Lit _ as v), (Qgm.Col _ as a))
          when Ast.is_comparison o ->
          Some
            ((col, V_expr a)
            :: (op, V_op (Ast.flip_comparison o))
            :: (lit, V_expr v) :: env)
        | _ -> None)
      ctx.b.Qgm.b_preds
  | Box_kind kp -> test (kind_matches ctx.b.Qgm.b_kind kp)
  | Pred_matches (p, ep) -> test (epat_matches (pred_v env p).Qgm.p_expr ep)
  | Movable p -> test (movable (pred_v env p))
  | Not_marked (p, m) -> test (not (Qgm.pred_marked (pred_v env p) m))
  | Sole_quant_ref { pred; quant } -> (
    match Qgm.quant_refs (pred_v env pred).Qgm.p_expr with
    | [ qid ] -> [ (quant, V_quant (Qgm.quant ctx.g qid)) :: env ]
    | _ -> fail)
  | Quant_parent_here q ->
    test ((quant_v env q).Qgm.q_parent = ctx.b.Qgm.b_id)
  | Quant_type_f q -> test ((quant_v env q).Qgm.q_type = Qgm.F)
  | Input_box { quant; box } ->
    [ (box, V_box (Qgm.box ctx.g (quant_v env quant).Qgm.q_input)) :: env ]
  | Kind_is (b, kp) -> test (kind_matches (box_v env b).Qgm.b_kind kp)
  | Plain_select b -> test (Util.is_plain_select ctx.g (box_v env b))
  | Not_top b -> test ((box_v env b).Qgm.b_id <> ctx.g.Qgm.top)
  | Single_user b -> test (Util.has_single_user ctx.g (box_v env b).Qgm.b_id)
  | Head_all_exprs b ->
    test
      (List.for_all
         (fun hc -> hc.Qgm.hc_expr <> None)
         (box_v env b).Qgm.b_head)
  | Not_recursive b ->
    test (not (Qgm.is_recursive ctx.g (box_v env b).Qgm.b_id))
  | Group_keys_passthrough { pred; box } ->
    test (group_keys_passthrough (pred_v env pred) (box_v env box))
  | Inline { pred; quant; out } -> (
    match
      Util.inline_through ctx.g (quant_v env quant) (pred_v env pred).Qgm.p_expr
    with
    | Some e -> [ (out, V_expr e) :: env ]
    | None -> fail)
  | Replica { left; right; col; op; lit; out } ->
    let a = expr_v env left and c = expr_v env right in
    let x = expr_v env col and o = op_v env op and v = expr_v env lit in
    if x = a then [ (out, V_expr (Qgm.Bin (o, c, v))) :: env ]
    else if x = c then [ (out, V_expr (Qgm.Bin (o, a, v))) :: env ]
    else fail
  | Not_exists_here e -> test (not (Util.pred_exists ctx.b (expr_v env e)))
  | Not_already_pushed e -> test (not (already_pushed ctx.g (expr_v env e)))
  | Both_quants_here (a, b) ->
    let here v =
      List.exists
        (fun q -> q.Qgm.q_id = (quant_v env v).Qgm.q_id && q.Qgm.q_type = Qgm.F)
        ctx.b.Qgm.b_quants
    in
    test (here a && here b)
  | Same_input (a, b) ->
    test ((quant_v env a).Qgm.q_input = (quant_v env b).Qgm.q_input)
  | Guard_unique { quant; col } ->
    test
      (Util.derives_unique ctx.g (quant_v env quant) (int_v env col)
         ~catalog:ctx.catalog)
  | Guard_not_null { quant; col } ->
    test
      (Util.derives_not_null ctx.g (quant_v env quant) (int_v env col)
         ~catalog:ctx.catalog)
  | Guard_single_user b ->
    test (Util.has_single_user ctx.g (box_v env b).Qgm.b_id)
  | Guard_strict p ->
    test
      (Sb_analysis.Prover.strict_in_refs (pred_v env p).Qgm.p_expr
      = Sb_analysis.Prover.Strict)

(** First solution of the pattern, or [None]. *)
let rec solve ctx env = function
  | [] -> Some env
  | atom :: rest ->
    List.find_map (fun env' -> solve ctx env' rest) (expand ctx env atom)

let exec ctx env = function
  | Remove_pred p -> Util.remove_pred ctx.b (pred_v env p)
  | Add_pred_to { box; expr } ->
    let l = box_v env box and e = expr_v env expr in
    if not (Util.pred_exists l e) then
      l.Qgm.b_preds <- l.Qgm.b_preds @ [ Qgm.pred e ]
  | Add_pred_here e ->
    ctx.b.Qgm.b_preds <- ctx.b.Qgm.b_preds @ [ Qgm.pred (expr_v env e) ]
  | Mark_pred (p, m) -> Qgm.mark_pred (pred_v env p) m
  | Replicate_into_arms { pred; quant; box } ->
    let p = pred_v env pred and q = quant_v env quant in
    List.iter
      (fun arm ->
        let s = Util.interpose_select ctx.g arm in
        let head = Array.of_list s.Qgm.b_head in
        let e =
          Qgm.subst_cols
            (fun qid i ->
              if qid = q.Qgm.q_id then head.(i).Qgm.hc_expr else None)
            p.Qgm.p_expr
        in
        s.Qgm.b_preds <- [ Qgm.pred e ])
      (Qgm.setformers (box_v env box))
  | Redirect_refs { drop; keep } ->
    let d = quant_v env drop and k = quant_v env keep in
    Util.subst_everywhere ctx.g (fun qid i ->
        if qid = d.Qgm.q_id then Some (Qgm.Col (k.Qgm.q_id, i)) else None)
  | Drop_reflexive_eqs ->
    ctx.b.Qgm.b_preds <-
      List.filter
        (fun (p : Qgm.pred) ->
          match p.Qgm.p_expr with
          | Qgm.Bin (Ast.Eq, a, c) when a = c && Qgm.col_refs a <> [] -> false
          | _ -> true)
        ctx.b.Qgm.b_preds
  | Remove_quant q -> Qgm.remove_quant ctx.g (quant_v env q)
  | Remove_preds_matching ep ->
    ctx.b.Qgm.b_preds <-
      List.filter
        (fun (p : Qgm.pred) -> not (epat_matches p.Qgm.p_expr ep))
        ctx.b.Qgm.b_preds

(** Compile a rule whose verdict and (possibly guard-extended) pattern
    are already known.  Exposed for tests; use {!compile}. *)
let to_rule ~catalog (r : rule) ~pattern : Rule.t =
  let solve_here (c : Rule.context) =
    solve { g = c.Rule.graph; b = c.Rule.box; catalog } [] pattern
  in
  Rule.make ~priority:r.priority ~origin:Rule.Dsl ~name:r.name
    ~rule_class:r.rule_class
    ~condition:(fun c -> solve_here c <> None)
    ~action:(fun c ->
      match solve_here c with
      | Some env ->
        let ctx = { g = c.Rule.graph; b = c.Rule.box; catalog } in
        List.iter (exec ctx env) r.actions
      | None -> ())
    ()

(** Verify, then compile.  [Ok (rule, status)] for [Verified] and
    [Conditional] (the latter with its runtime guards appended to the
    pattern); [Error status] for [Rejected]. *)
let compile ~catalog (r : rule) : (Rule.t * Verify.status, Verify.status) result
    =
  let v = Verify.verify r in
  match v.Verify.v_status with
  | Verify.Rejected _ -> Error v.Verify.v_status
  | status ->
    Ok (to_rule ~catalog r ~pattern:(r.pattern @ v.Verify.v_guards), status)
