(** A declarative language for QGM rewrite rules.

    The paper's rules are C condition/action function pairs; ours so far
    are OCaml closures — and three of the four fuzz-found bugs (PR 5)
    were hand-rolled safety guards the closure author forgot.  This
    module makes the rule {e data}: a [pattern] — an ordered list of
    atoms, each either a {e generator} (enumerating candidates from the
    box the rule engine is visiting, in document order) or a {e test} —
    and an [actions] template over the metavariables the pattern binds.
    The declarative form is what lets {!Verify} read a rule's semantics
    off its syntax at registration time: which predicate moves where,
    which quantifier disappears, what the action adds — and so which
    side-conditions must hold for the rewrite to be sound.

    Matching is backtracking first-solution: atoms are tried in order,
    a generator's candidates are enumerated in the same order the native
    closures traverse them ([b_preds] list order, equality-major for
    replication), and a failed test backtracks to the next candidate.
    A compiled DSL rule therefore selects the {e same} candidate as its
    hand-written original and performs the same mutations in the same
    order — rewrites are byte-identical, which the fuzz oracle checks
    differentially. *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast

(** A metavariable.  Bound by generators/binders, consumed by tests and
    actions; scope-checked by {!Verify.verify}. *)
type var = string

(** What a metavariable holds once bound. *)
type value =
  | V_pred of Qgm.pred
  | V_quant of Qgm.quant
  | V_box of Qgm.box
  | V_expr of Qgm.expr
  | V_op of Ast.binop
  | V_int of int

type binding = (var * value) list

(** Box-kind patterns, for the current box and for bound box
    metavariables. *)
type kind_pat =
  | K_select
  | K_group_by
  | K_set_op
  | K_base_table
  | K_ext  (** an extension operation (NULL-padding outer join etc.) *)
  | K_select_or_group_by

(** Shallow expression patterns — enough to constrain a predicate
    metavariable's shape so the verifier can reason about it
    schematically. *)
type epat =
  | E_any
  | E_true  (** the literal TRUE *)
  | E_null_lit  (** the literal NULL *)
  | E_is_null  (** [IS NULL] over a column — provably non-strict *)
  | E_cmp  (** [Col op Lit] comparison — provably strict *)

(** Pattern atoms.  Generators bind their variables to successive
    candidates; tests filter.  The variable-binding discipline is
    mechanical: {!binds} and {!uses} below drive the scope check. *)
type atom =
  (* --- generators over the current box --- *)
  | Each_pred of var  (** every predicate of the current box, in order *)
  | Each_eq_col_pred of { pred : var; keep : var; drop : var; col : var }
      (** predicates [q1.i = q2.i] over two distinct quantifiers and the
          same column index; binds the pred, both quantifiers and the
          index *)
  | Each_eq_pair of { left : var; right : var }
      (** predicates [Col = Col] with distinct column refs; binds the
          two column expressions *)
  | Each_restriction of { col : var; op : var; lit : var }
      (** predicates [Col op Lit] (or flipped, normalized); binds the
          column expression, the comparison and the literal *)
  (* --- tests and binders --- *)
  | Box_kind of kind_pat  (** the current box's kind *)
  | Pred_matches of var * epat
  | Movable of var
      (** no subquery consumption, no aggregates in the predicate *)
  | Not_marked of var * string
  | Sole_quant_ref of { pred : var; quant : var }
      (** the predicate references exactly one quantifier; binds it *)
  | Quant_parent_here of var  (** the quantifier belongs to this box *)
  | Quant_type_f of var
  | Input_box of { quant : var; box : var }  (** binds the input box *)
  | Kind_is of var * kind_pat
  | Plain_select of var
  | Not_top of var
  | Single_user of var
  | Head_all_exprs of var
  | Not_recursive of var
  | Group_keys_passthrough of { pred : var; box : var }
      (** every column the predicate references is a pass-through
          GROUP BY key of the box *)
  | Inline of { pred : var; quant : var; out : var }
      (** binds [out] to the predicate inlined through the quantifier
          (head expressions substituted); fails on expression-less
          heads *)
  | Replica of { left : var; right : var; col : var; op : var; lit : var;
                 out : var }
      (** from [left = right] and [col op lit] where [col] is one side
          of the equality, binds [out] to the replica on the other
          side *)
  | Not_exists_here of var  (** no equal predicate already on this box *)
  | Not_already_pushed of var
      (** the expression (or any inlining of it) does not already exist
          below — the anti-ping-pong fuel check *)
  | Both_quants_here of var * var  (** both are F quantifiers of this box *)
  | Same_input of var * var
  (* --- runtime guards (auto-inserted by the verifier for unproved
         obligations; rule authors may also write them directly) --- *)
  | Guard_unique of { quant : var; col : var }
      (** prover query: the column derives a key of the quantifier's
          input (duplicate preservation) *)
  | Guard_not_null of { quant : var; col : var }
      (** prover query: the column cannot be NULL *)
  | Guard_single_user of var
  | Guard_strict of var
      (** prover query: the predicate is null-intolerant in every column
          it references *)

(** Action templates.  Each mutates the matched graph exactly as the
    corresponding native-rule fragment does. *)
type action =
  | Remove_pred of var
  | Add_pred_to of { box : var; expr : var }
      (** append the expression as a predicate unless an equal one is
          already there — the move-target half of a push-down *)
  | Add_pred_here of var  (** append to the current box, unconditionally *)
  | Mark_pred of var * string
  | Replicate_into_arms of { pred : var; quant : var; box : var }
      (** σ(A ∪ B) = σA ∪ σB: interpose an identity SELECT above every
          setformer arm of the box and give each a substituted replica *)
  | Redirect_refs of { drop : var; keep : var }
      (** rewrite every reference to [drop]'s columns into [keep]'s *)
  | Drop_reflexive_eqs
      (** drop predicates of the current box that became [e = e] *)
  | Remove_quant of var
  | Remove_preds_matching of epat

type rule = {
  name : string;
  rule_class : string;
  priority : int;
  pattern : atom list;
  actions : action list;
}

(* ------------------------------------------------------------------ *)
(* Variable discipline                                                 *)
(* ------------------------------------------------------------------ *)

(** Variables an atom binds (generators and binders). *)
let binds = function
  | Each_pred p -> [ p ]
  | Each_eq_col_pred { pred; keep; drop; col } -> [ pred; keep; drop; col ]
  | Each_eq_pair { left; right } -> [ left; right ]
  | Each_restriction { col; op; lit } -> [ col; op; lit ]
  | Sole_quant_ref { quant; _ } -> [ quant ]
  | Input_box { box; _ } -> [ box ]
  | Inline { out; _ } -> [ out ]
  | Replica { out; _ } -> [ out ]
  | _ -> []

(** Variables an atom consumes (must be bound earlier). *)
let uses = function
  | Each_pred _ | Each_eq_col_pred _ | Each_eq_pair _ | Each_restriction _
  | Box_kind _ ->
    []
  | Pred_matches (p, _) | Movable p | Not_marked (p, _) -> [ p ]
  | Sole_quant_ref { pred; _ } -> [ pred ]
  | Quant_parent_here q | Quant_type_f q -> [ q ]
  | Input_box { quant; _ } -> [ quant ]
  | Kind_is (b, _) | Plain_select b | Not_top b | Single_user b
  | Head_all_exprs b | Not_recursive b ->
    [ b ]
  | Group_keys_passthrough { pred; box } -> [ pred; box ]
  | Inline { pred; quant; _ } -> [ pred; quant ]
  | Replica { left; right; col; op; lit; _ } -> [ left; right; col; op; lit ]
  | Not_exists_here e | Not_already_pushed e -> [ e ]
  | Both_quants_here (a, b) | Same_input (a, b) -> [ a; b ]
  | Guard_unique { quant; col } | Guard_not_null { quant; col } ->
    [ quant; col ]
  | Guard_single_user b -> [ b ]
  | Guard_strict p -> [ p ]

let action_uses = function
  | Remove_pred p | Mark_pred (p, _) -> [ p ]
  | Add_pred_to { box; expr } -> [ box; expr ]
  | Add_pred_here e -> [ e ]
  | Replicate_into_arms { pred; quant; box } -> [ pred; quant; box ]
  | Redirect_refs { drop; keep } -> [ drop; keep ]
  | Drop_reflexive_eqs | Remove_preds_matching _ -> []
  | Remove_quant q -> [ q ]

let atom_name = function
  | Each_pred _ -> "each-pred"
  | Each_eq_col_pred _ -> "each-eq-col-pred"
  | Each_eq_pair _ -> "each-eq-pair"
  | Each_restriction _ -> "each-restriction"
  | Box_kind _ -> "box-kind"
  | Pred_matches _ -> "pred-matches"
  | Movable _ -> "movable"
  | Not_marked _ -> "not-marked"
  | Sole_quant_ref _ -> "sole-quant-ref"
  | Quant_parent_here _ -> "quant-parent-here"
  | Quant_type_f _ -> "quant-type-f"
  | Input_box _ -> "input-box"
  | Kind_is _ -> "kind-is"
  | Plain_select _ -> "plain-select"
  | Not_top _ -> "not-top"
  | Single_user _ -> "single-user"
  | Head_all_exprs _ -> "head-all-exprs"
  | Not_recursive _ -> "not-recursive"
  | Group_keys_passthrough _ -> "group-keys-passthrough"
  | Inline _ -> "inline"
  | Replica _ -> "replica"
  | Not_exists_here _ -> "not-exists-here"
  | Not_already_pushed _ -> "not-already-pushed"
  | Both_quants_here _ -> "both-quants-here"
  | Same_input _ -> "same-input"
  | Guard_unique _ -> "guard-unique"
  | Guard_not_null _ -> "guard-not-null"
  | Guard_single_user _ -> "guard-single-user"
  | Guard_strict _ -> "guard-strict"

let action_name = function
  | Remove_pred _ -> "remove-pred"
  | Add_pred_to _ -> "add-pred-to"
  | Add_pred_here _ -> "add-pred-here"
  | Mark_pred _ -> "mark-pred"
  | Replicate_into_arms _ -> "replicate-into-arms"
  | Redirect_refs _ -> "redirect-refs"
  | Drop_reflexive_eqs -> "drop-reflexive-eqs"
  | Remove_quant _ -> "remove-quant"
  | Remove_preds_matching _ -> "remove-preds-matching"
