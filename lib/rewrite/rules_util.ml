(** Shared helpers for writing rewrite rules ("a rich set of primitives
    for manipulating query graphs"). *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast

(** The single quantifier ranging over box [id], if exactly one. *)
let single_user g id =
  match Qgm.users_of_box g id with [ q ] -> Some q | _ -> None

let has_single_user g id = single_user g id <> None

(** All setformers of [b] are plain F (no extension setformer such as
    PF) — the conservative condition base rules use so they cannot
    misfire on extension operations. *)
let plain_setformers (b : Qgm.box) =
  List.for_all
    (fun q ->
      match q.Qgm.q_type with
      | Qgm.F | Qgm.E | Qgm.A | Qgm.S | Qgm.SP _ -> true
      | Qgm.Ext _ -> false)
    b.Qgm.b_quants

(** A box whose body may both give away and absorb predicates. *)
let is_plain_select g (b : Qgm.box) =
  b.Qgm.b_kind = Qgm.Select
  && b.Qgm.b_limit = None
  && (not (Qgm.is_recursive g b.Qgm.b_id))
  && plain_setformers b

(** Rewrites [e], replacing references through quantifier [q] by the
    head expressions of the box [q] ranges over.  Returns [None] when a
    referenced head column has no expression (base tables etc.). *)
let inline_through g (q : Qgm.quant) (e : Qgm.expr) : Qgm.expr option =
  let l = Qgm.box g q.Qgm.q_input in
  let exception No_expr in
  try
    Some
      (Qgm.subst_cols
         (fun qid i ->
           if qid = q.Qgm.q_id then
             match (Qgm.head_col l i).Qgm.hc_expr with
             | Some he -> Some he
             | None -> raise No_expr
           else None)
         e)
  with No_expr -> None

(** Replaces every reference to [old_q] column [i] across the whole
    graph using [subst], covering correlated references from nested
    boxes. *)
let subst_everywhere g (subst : Qgm.quant_id -> int -> Qgm.expr option) =
  let rewrite e = Qgm.subst_cols subst e in
  Hashtbl.iter
    (fun _ (b : Qgm.box) ->
      b.Qgm.b_head <-
        List.map
          (fun hc -> { hc with Qgm.hc_expr = Option.map rewrite hc.Qgm.hc_expr })
          b.Qgm.b_head;
      List.iter (fun p -> p.Qgm.p_expr <- rewrite p.Qgm.p_expr) b.Qgm.b_preds;
      b.Qgm.b_order <- List.map (fun (e, d) -> (rewrite e, d)) b.Qgm.b_order;
      b.Qgm.b_kind <-
        (match b.Qgm.b_kind with
        | Qgm.Group_by keys -> Qgm.Group_by (List.map rewrite keys)
        | Qgm.Values_box rows -> Qgm.Values_box (List.map (List.map rewrite) rows)
        | Qgm.Table_fn (n, args) -> Qgm.Table_fn (n, List.map rewrite args)
        | k -> k))
    g.Qgm.boxes

(** Does any expression anywhere reference column [i] of quantifier
    [qid]? *)
let col_used_anywhere g qid i =
  let used = ref false in
  let check e =
    List.iter (fun (q, j) -> if q = qid && j = i then used := true) (Qgm.col_refs e)
  in
  Hashtbl.iter
    (fun _ (b : Qgm.box) ->
      List.iter
        (fun hc -> Option.iter check hc.Qgm.hc_expr)
        b.Qgm.b_head;
      List.iter (fun p -> check p.Qgm.p_expr) b.Qgm.b_preds;
      List.iter (fun (e, _) -> check e) b.Qgm.b_order;
      match b.Qgm.b_kind with
      | Qgm.Group_by keys -> List.iter check keys
      | Qgm.Values_box rows -> List.iter (List.iter check) rows
      | Qgm.Table_fn (_, args) -> List.iter check args
      | _ -> ())
    g.Qgm.boxes;
  !used

(** Is quantifier [qid] referenced by any [Quantified] node other than
    possibly [except]? *)
let quantified_uses g qid =
  let count = ref 0 in
  let check e =
    ignore
      (Qgm.fold_expr
         (fun () e ->
           match e with Qgm.Quantified (q, _) when q = qid -> incr count | _ -> ())
         () e)
  in
  Hashtbl.iter
    (fun _ (b : Qgm.box) ->
      List.iter (fun hc -> Option.iter check hc.Qgm.hc_expr) b.Qgm.b_head;
      List.iter (fun p -> check p.Qgm.p_expr) b.Qgm.b_preds;
      List.iter (fun (e, _) -> check e) b.Qgm.b_order)
    g.Qgm.boxes;
  !count

(* Rule safety conditions below are prover queries against property
   inference ({!Sb_analysis.Infer}), never against statistics — only
   declared schema facts and the graph's own predicates, so a stale
   ANALYZE cannot make a rewrite unsound.  The analysis is recomputed
   per query because the condition runs mid-rewrite on a mutating
   graph; graphs are small and the pass is linear. *)
let infer g ~catalog = Sb_analysis.Infer.analyze ~trust_stats:false ~catalog g

(** Is head column [i] of the box under quantifier [q] a derived key of
    that box (at most one row per value)?  Catalog UNIQUE declarations,
    GROUP BY / DISTINCT heads, and key-preserving selects all qualify. *)
let derives_unique g (q : Qgm.quant) i ~catalog =
  Sb_analysis.Infer.col_unique (infer g ~catalog) g q.Qgm.q_id i

(** Can column [i] seen through quantifier [q] ever be NULL?  Declared
    NOT NULL propagates through selects and joins; an extension
    setformer (outer-join PF) NULL-pads, so nothing survives it. *)
let derives_not_null g (q : Qgm.quant) i ~catalog =
  Sb_analysis.Infer.col_not_null (infer g ~catalog) g q.Qgm.q_id i

(** Does the head-column set [cols] cover a derived key of box [id]
    (equal values in [cols] imply the same row)?  The empty set covers
    exactly the boxes with a single-row guarantee (per binding of any
    correlated outer quantifier). *)
let derives_key g id cols ~catalog =
  Sb_analysis.Props.covers_key
    (Sb_analysis.Infer.box_props (infer g ~catalog) id)
    cols

(** Removes predicate [p] (physical identity) from [b]. *)
let remove_pred (b : Qgm.box) (p : Qgm.pred) =
  b.Qgm.b_preds <- List.filter (fun x -> x != p) b.Qgm.b_preds

let pred_exists (b : Qgm.box) (e : Qgm.expr) =
  List.exists (fun p -> Qgm.equal_expr p.Qgm.p_expr e) b.Qgm.b_preds

(** Interposes a fresh SELECT box between quantifier [q] and its input,
    with an identity head; returns the new box.  Used to give a
    predicate a place to live below an operation that cannot hold it
    (set operations, outer joins). *)
let interpose_select g (q : Qgm.quant) : Qgm.box =
  let input = Qgm.box g q.Qgm.q_input in
  let s = Qgm.new_box g ~label:(input.Qgm.b_label ^ "'") Qgm.Select in
  let nq =
    Qgm.new_quant g ~label:(q.Qgm.q_label ^ "'") ~parent:s.Qgm.b_id
      ~input:input.Qgm.b_id Qgm.F
  in
  s.Qgm.b_head <-
    List.mapi
      (fun i hc ->
        {
          Qgm.hc_name = hc.Qgm.hc_name;
          hc_type = hc.Qgm.hc_type;
          hc_expr = Some (Qgm.Col (nq.Qgm.q_id, i));
        })
      input.Qgm.b_head;
  q.Qgm.q_input <- s.Qgm.b_id;
  s
