(** Rewrite rules (section 5).

    A rule is a condition and an action — in the paper both are C
    functions; here both are OCaml closures over a {!context}.  The rule
    writer's contract is that the action "completes a transformation":
    it turns a consistent QGM into another consistent QGM (the engine
    can verify this after every firing).

    Rules are grouped into {e rule classes} "to limit the number of
    rules that have to be examined, to allow modularization ... and to
    give the DBC more explicit control over the execution sequence". *)

module Qgm = Sb_qgm.Qgm

type context = {
  graph : Qgm.t;
  box : Qgm.box;  (** the box the search facility is currently visiting *)
}

(** Where a rule's condition/action came from: hand-written OCaml, or
    compiled from the declarative DSL. *)
type origin = Native | Dsl

type t = {
  rule_name : string;
  rule_class : string;
  rule_priority : int;  (** higher fires first under the Priority strategy *)
  rule_origin : origin;
  condition : context -> bool;
  action : context -> unit;
}

val make :
  ?priority:int ->
  ?origin:origin ->
  name:string ->
  rule_class:string ->
  condition:(context -> bool) ->
  action:(context -> unit) ->
  unit ->
  t

(** [" [dsl]"] for DSL-compiled rules, [""] for native ones — appended
    to rule names in audit messages and reports. *)
val origin_tag : t -> string

(** A mutable rule set with class-based filtering. *)
type set = { mutable rules : t list }

val empty_set : unit -> set
val add : set -> t -> unit
val add_all : set -> t list -> unit

(** Distinct class names, sorted. *)
val classes : set -> string list

(** The rules belonging to the named classes, in registration order. *)
val in_classes : set -> string list -> t list

val all : set -> t list
