(** The rule engine (section 5): forward chaining over IF-THEN rules,
    with pluggable control strategies, a firing budget that always stops
    in a consistent QGM state, and a search facility that browses QGM
    providing each rule's context. *)

module Qgm = Sb_qgm.Qgm
module Check = Sb_qgm.Check

(** Control strategies: the order rules are tried at each box. *)
type strategy =
  | Sequential  (** registration order *)
  | Priority  (** higher-priority rules first *)
  | Statistical of { weights : (string * float) list; seed : int }
      (** random order drawn from a per-rule weight distribution,
          deterministic per seed *)

(** Search strategies over the box graph: depth-first (top down) or
    breadth-first. *)
type search = Depth_first | Breadth_first

type stats = {
  mutable rules_fired : int;
  mutable rules_examined : int;
  mutable passes : int;
  mutable budget_exhausted : bool;
  mutable firings : (string * int) list;  (** per-rule firing counts *)
  mutable attempts : (string * int) list;  (** per-rule condition tests *)
}

val fresh_stats : unit -> stats

(** Per-rule [(name, fires, attempts)] rows, most-fired first. *)
val per_rule : stats -> (string * int * int) list

(** Boxes in the given search order (cycles visited once). *)
val boxes_in_order : Qgm.t -> search -> Qgm.box list

(** Runs [rules] to fixpoint or until [budget] firings.  When the budget
    runs out, processing stops at a consistent QGM state (the engine
    never interrupts an action).  [check_each] re-verifies QGM
    consistency after every firing.  [tracer] records one span per rule
    firing (rule name, budget remaining, QGM box count before/after);
    the default no-op tracer costs nothing.  Unreachable boxes are
    garbage-collected before returning. *)
val run :
  ?strategy:strategy ->
  ?search:search ->
  ?budget:int ->
  ?check_each:bool ->
  ?tracer:Sb_obs.Trace.t ->
  rules:Rule.t list ->
  Qgm.t ->
  stats
