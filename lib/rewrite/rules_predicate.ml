(** Predicate-migration rules: push-down ("from" rules give a predicate
    away, "to" rules receive it), replication across equality classes,
    and push-down through GROUP BY and set operations.  "Predicates may
    be pushed down into lower level operations to minimize the amount of
    data retrieved" (section 5). *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
open Rules_util

(** A predicate is movable if it contains no subquery consumption, no
    aggregates and references exactly one quantifier. *)
let movable_pred (p : Qgm.pred) =
  (not (Qgm.contains_quantified p.Qgm.p_expr))
  && not (Qgm.contains_agg p.Qgm.p_expr)

(* --- push down into a SELECT box --- *)

(** The "from" side: box [b] may give away predicate [p]; the "to" side:
    the box under [q] may receive it.  Both sides' conditions combined. *)
let pushdown_candidate g (b : Qgm.box) =
  match b.Qgm.b_kind with
  | Qgm.Select | Qgm.Group_by _ ->
    List.find_map
      (fun p ->
        if not (movable_pred p) then None
        else
          match Qgm.quant_refs p.Qgm.p_expr with
          | [ qid ] ->
            let q = Qgm.quant g qid in
            if q.Qgm.q_parent <> b.Qgm.b_id || q.Qgm.q_type <> Qgm.F then None
            else
              let l = Qgm.box g q.Qgm.q_input in
              if
                is_plain_select g l
                && l.Qgm.b_id <> g.Qgm.top
                && has_single_user g l.Qgm.b_id
                && List.for_all (fun hc -> hc.Qgm.hc_expr <> None) l.Qgm.b_head
              then
                Option.map (fun e -> (p, q, l, e)) (inline_through g q p.Qgm.p_expr)
              else None
          | _ -> None)
      b.Qgm.b_preds
  | _ -> None

let push_into_select : Rule.t =
  Rule.make ~priority:40 ~name:"push_into_select" ~rule_class:"predicate"
    ~condition:(fun ctx -> pushdown_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      match pushdown_candidate ctx.Rule.graph ctx.Rule.box with
      | Some (p, _, l, e) ->
        remove_pred ctx.Rule.box p;
        if not (pred_exists l e) then
          l.Qgm.b_preds <- l.Qgm.b_preds @ [ Qgm.pred e ]
      | None -> ())
    ()

(* --- push down through a GROUP BY box --- *)

(** A predicate referencing only pass-through group keys filters whole
    groups, so it may move below the grouping. *)
let through_group_candidate g (b : Qgm.box) =
  match b.Qgm.b_kind with
  | Qgm.Select ->
    List.find_map
      (fun p ->
        if not (movable_pred p) then None
        else
          match Qgm.quant_refs p.Qgm.p_expr with
          | [ qid ] ->
            let q = Qgm.quant g qid in
            let l = Qgm.box g q.Qgm.q_input in
            (match l.Qgm.b_kind with
            | Qgm.Group_by keys
              when q.Qgm.q_type = Qgm.F
                   && has_single_user g l.Qgm.b_id
                   && not (Qgm.is_recursive g l.Qgm.b_id) ->
              (* every column referenced must be a group key pass-through *)
              let refs = Qgm.col_refs p.Qgm.p_expr in
              let ok =
                List.for_all
                  (fun (_, i) ->
                    match (Qgm.head_col l i).Qgm.hc_expr with
                    | Some (Qgm.Col _ as e) -> List.mem e keys
                    | _ -> false)
                  refs
              in
              if ok then
                Option.map (fun e -> (p, l, e)) (inline_through g q p.Qgm.p_expr)
              else None
            | _ -> None)
          | _ -> None)
      b.Qgm.b_preds
  | _ -> None

let push_through_group_by : Rule.t =
  Rule.make ~priority:40 ~name:"push_through_group_by" ~rule_class:"predicate"
    ~condition:(fun ctx ->
      through_group_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      match through_group_candidate ctx.Rule.graph ctx.Rule.box with
      | Some (p, l, e) ->
        remove_pred ctx.Rule.box p;
        if not (pred_exists l e) then
          l.Qgm.b_preds <- l.Qgm.b_preds @ [ Qgm.pred e ]
        (* a GROUP BY box's own predicates filter its input before
           grouping; the push_into_select rule can move them further *)
      | None -> ())
    ()

(* --- push down through a set operation (replicating the predicate) --- *)

let through_setop_candidate g (b : Qgm.box) =
  match b.Qgm.b_kind with
  | Qgm.Select | Qgm.Group_by _ ->
    List.find_map
      (fun p ->
        if (not (movable_pred p)) || Qgm.pred_marked p "pushed_setop" then None
        else
          match Qgm.quant_refs p.Qgm.p_expr with
          | [ qid ] ->
            let q = Qgm.quant g qid in
            let l = Qgm.box g q.Qgm.q_input in
            (match l.Qgm.b_kind with
            | Qgm.Set_op _
              when q.Qgm.q_type = Qgm.F
                   && has_single_user g l.Qgm.b_id
                   && not (Qgm.is_recursive g l.Qgm.b_id) ->
              Some (p, q, l)
            | _ -> None)
          | _ -> None)
      b.Qgm.b_preds
  | _ -> None

let push_through_set_op : Rule.t =
  Rule.make ~priority:35 ~name:"push_through_set_op" ~rule_class:"predicate"
    ~condition:(fun ctx ->
      through_setop_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph in
      match through_setop_candidate g ctx.Rule.box with
      | Some (p, q, l) ->
        (* the original is kept (marked) so it is not re-derived; the
           replicas below do the real filtering *)
        Qgm.mark_pred p "pushed_setop";
        (* σ(A ∪ B) = σA ∪ σB, likewise for ∩ and −; interpose a SELECT
           above each arm to hold the replica *)
        List.iter
          (fun arm ->
            let s = interpose_select g arm in
            let head = Array.of_list s.Qgm.b_head in
            let e =
              Qgm.subst_cols
                (fun qid i ->
                  if qid = q.Qgm.q_id then head.(i).Qgm.hc_expr else None)
                p.Qgm.p_expr
            in
            s.Qgm.b_preds <- [ Qgm.pred e ])
          (Qgm.setformers l)
      | None -> ())
    ()

(* --- predicate replication across equality classes --- *)

(** From [q1.x = q2.y] and [q1.x op constant], derive [q2.y op constant]
    ("predicates may also be replicated, and replicas migrated to
    multiple operations to reduce execution cost").

    A replica that has already been pushed below its quantifier must not
    be derived again, or replication and push-down would ping-pong.  The
    check recurses: push-down rules may carry a predicate several levels
    deep (e.g. through an outer join onto its preserved side), and a
    one-level test would re-derive the replica forever.  Fuel bounds the
    descent on cyclic (recursive-query) graphs. *)
let derived_already_pushed g (e : Qgm.expr) =
  let rec pushed fuel (e : Qgm.expr) =
    fuel > 0
    &&
    match Qgm.quant_refs e with
    | [ qid ] -> (
      let q = Qgm.quant g qid in
      let l = Qgm.box g q.Qgm.q_input in
      match inline_through g q e with
      | Some e' -> pred_exists l e' || pushed (fuel - 1) e'
      | None -> false)
    | _ -> false
  in
  pushed 8 e

let replicate_candidate g (b : Qgm.box) =
  match b.Qgm.b_kind with
  | Qgm.Select ->
    let eqs =
      List.filter_map
        (fun p ->
          match p.Qgm.p_expr with
          | Qgm.Bin (Ast.Eq, (Qgm.Col _ as a), (Qgm.Col _ as c)) when a <> c ->
            Some (a, c)
          | _ -> None)
        b.Qgm.b_preds
    in
    let restrictions =
      List.filter_map
        (fun p ->
          match p.Qgm.p_expr with
          | Qgm.Bin (op, (Qgm.Col _ as a), (Qgm.Lit _ as v))
            when Ast.is_comparison op ->
            Some (a, op, v)
          | Qgm.Bin (op, (Qgm.Lit _ as v), (Qgm.Col _ as a))
            when Ast.is_comparison op ->
            Some (a, Ast.flip_comparison op, v)
          | _ -> None)
        b.Qgm.b_preds
    in
    List.concat_map
      (fun (a, c) ->
        List.concat_map
          (fun (col, op, v) ->
            let derived =
              if col = a then [ Qgm.Bin (op, c, v) ]
              else if col = c then [ Qgm.Bin (op, a, v) ]
              else []
            in
            List.filter
              (fun e ->
                (not (pred_exists b e)) && not (derived_already_pushed g e))
              derived)
          restrictions)
      eqs
    |> (function [] -> None | e :: _ -> Some e)
  | _ -> None

let replicate_restriction : Rule.t =
  Rule.make ~priority:45 ~name:"replicate_restriction" ~rule_class:"predicate"
    ~condition:(fun ctx -> replicate_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      match replicate_candidate ctx.Rule.graph ctx.Rule.box with
      | Some e -> ctx.Rule.box.Qgm.b_preds <- ctx.Rule.box.Qgm.b_preds @ [ Qgm.pred e ]
      | None -> ())
    ()

(* --- constant simplification: drop TRUE conjuncts --- *)

let drop_true : Rule.t =
  Rule.make ~priority:70 ~name:"drop_true_predicate" ~rule_class:"predicate"
    ~condition:(fun ctx ->
      List.exists
        (fun p -> p.Qgm.p_expr = Qgm.Lit (Sb_storage.Value.Bool true))
        ctx.Rule.box.Qgm.b_preds)
    ~action:(fun ctx ->
      ctx.Rule.box.Qgm.b_preds <-
        List.filter
          (fun p -> p.Qgm.p_expr <> Qgm.Lit (Sb_storage.Value.Bool true))
          ctx.Rule.box.Qgm.b_preds)
    ()

let rules =
  [
    push_into_select;
    push_through_group_by;
    push_through_set_op;
    replicate_restriction;
    drop_true;
  ]
