(** Rewrite rules (section 5).

    A rule is a condition and an action — in the paper both are C
    functions; here both are OCaml closures over a {!context}.  The rule
    writer's contract is that the action "completes a transformation":
    it turns a consistent QGM into another consistent QGM (the engine
    can verify this after every firing).

    Rules are grouped into {e rule classes} "to limit the number of
    rules that have to be examined, to allow modularization ... and to
    give the DBC more explicit control over the execution sequence". *)

module Qgm = Sb_qgm.Qgm

type context = {
  graph : Qgm.t;
  box : Qgm.box;  (** the box the search facility is currently visiting *)
}

(** Where a rule's condition/action came from: hand-written OCaml, or
    compiled from the declarative DSL (and so carrying a verification
    status the audit trail can attribute). *)
type origin = Native | Dsl

type t = {
  rule_name : string;
  rule_class : string;
  rule_priority : int;  (** higher fires first under the Priority strategy *)
  rule_origin : origin;
  condition : context -> bool;
  action : context -> unit;
}

let make ?(priority = 0) ?(origin = Native) ~name ~rule_class ~condition
    ~action () =
  {
    rule_name = name;
    rule_class;
    rule_priority = priority;
    rule_origin = origin;
    condition;
    action;
  }

let origin_tag r = match r.rule_origin with Native -> "" | Dsl -> " [dsl]"

(** A rule set with class-based filtering. *)
type set = { mutable rules : t list }

let empty_set () = { rules = [] }

let add set rule = set.rules <- set.rules @ [ rule ]

let add_all set rules = List.iter (add set) rules

let classes set =
  List.map (fun r -> r.rule_class) set.rules |> List.sort_uniq String.compare

let in_classes set names =
  List.filter (fun r -> List.mem r.rule_class names) set.rules

let all set = set.rules
