(** Shared helpers for writing rewrite rules ("a rich set of primitives
    for manipulating query graphs"). *)

module Qgm = Sb_qgm.Qgm

val single_user : Qgm.t -> Qgm.box_id -> Qgm.quant option
val has_single_user : Qgm.t -> Qgm.box_id -> bool

(** No extension setformer (such as PF) in the body — the conservative
    condition keeping base rules off extension operations. *)
val plain_setformers : Qgm.box -> bool

(** A box whose body may both give away and absorb predicates. *)
val is_plain_select : Qgm.t -> Qgm.box -> bool

(** Rewrites [e], replacing references through the quantifier by the
    head expressions of its input box; [None] when a referenced head
    column has no expression (base tables etc.). *)
val inline_through : Qgm.t -> Qgm.quant -> Qgm.expr -> Qgm.expr option

(** Applies a column-reference substitution across the whole graph,
    covering correlated references from nested boxes. *)
val subst_everywhere : Qgm.t -> (Qgm.quant_id -> int -> Qgm.expr option) -> unit

val col_used_anywhere : Qgm.t -> Qgm.quant_id -> int -> bool

(** Number of [Quantified] nodes consuming the quantifier. *)
val quantified_uses : Qgm.t -> Qgm.quant_id -> int

(** Is head column [i] of the box under the quantifier a derived key of
    that box?  A prover query against {!Sb_analysis.Infer} (statistics
    are never trusted): catalog UNIQUE declarations, GROUP BY and
    DISTINCT heads, and key-preserving selects all qualify. *)
val derives_unique :
  Qgm.t -> Qgm.quant -> int -> catalog:Sb_storage.Catalog.t -> bool

(** Can column [i] seen through the quantifier never be NULL?  Inference
    propagates declared NOT NULL through selects; extension setformers
    (outer-join PF) NULL-pad, so nothing survives them. *)
val derives_not_null :
  Qgm.t -> Qgm.quant -> int -> catalog:Sb_storage.Catalog.t -> bool

(** Does the head-column set cover a derived key of the box?  The empty
    set covers exactly the boxes with a single-row guarantee (per
    binding of any correlated outer quantifier). *)
val derives_key :
  Qgm.t -> Qgm.box_id -> int list -> catalog:Sb_storage.Catalog.t -> bool

(** Removes a predicate by physical identity. *)
val remove_pred : Qgm.box -> Qgm.pred -> unit

val pred_exists : Qgm.box -> Qgm.expr -> bool

(** Interposes a fresh identity SELECT box between the quantifier and
    its input (a place for predicates below set operations, recursion
    seeds and outer joins). *)
val interpose_select : Qgm.t -> Qgm.quant -> Qgm.box
