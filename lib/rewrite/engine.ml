(** The rule engine (section 5): forward chaining over IF-THEN rules,
    with pluggable control strategies, a firing budget that always stops
    in a consistent QGM state, and a search facility that browses QGM
    providing each rule's context.

    Control strategies:
    - {e Sequential} — rules are tried in registration order;
    - {e Priority}   — higher-priority rules get a chance first;
    - {e Statistical} — the next rule is chosen randomly from a
      user-supplied probability distribution (seeded, deterministic).

    Search strategies: depth-first (top down) and breadth-first over the
    box graph. *)

module Qgm = Sb_qgm.Qgm
module Check = Sb_qgm.Check

type strategy =
  | Sequential
  | Priority
  | Statistical of { weights : (string * float) list; seed : int }

type search = Depth_first | Breadth_first

type stats = {
  mutable rules_fired : int;
  mutable rules_examined : int;
  mutable passes : int;
  mutable budget_exhausted : bool;
  mutable firings : (string * int) list;  (** per-rule firing counts *)
  mutable attempts : (string * int) list;  (** per-rule condition tests *)
}

let fresh_stats () =
  {
    rules_fired = 0;
    rules_examined = 0;
    passes = 0;
    budget_exhausted = false;
    firings = [];
    attempts = [];
  }

let bump assoc name =
  let count = try List.assoc name !assoc with Not_found -> 0 in
  assoc := (name, count + 1) :: List.remove_assoc name !assoc

let record_firing stats name =
  let l = ref stats.firings in
  bump l name;
  stats.firings <- !l

let record_attempt stats name =
  let l = ref stats.attempts in
  bump l name;
  stats.attempts <- !l

(** Per-rule [(name, fires, attempts)] rows, most-fired first. *)
let per_rule stats =
  let names =
    List.sort_uniq String.compare
      (List.map fst stats.firings @ List.map fst stats.attempts)
  in
  List.map
    (fun name ->
      ( name,
        Option.value ~default:0 (List.assoc_opt name stats.firings),
        Option.value ~default:0 (List.assoc_opt name stats.attempts) ))
    names
  |> List.sort (fun (an, af, _) (bn, bf, _) ->
         match Int.compare bf af with 0 -> String.compare an bn | c -> c)

exception Budget_exhausted

(** Boxes in search order.  Depth-first visits a box before the boxes
    its quantifiers range over (top down); breadth-first visits level by
    level.  Cycles (recursive queries) are visited once. *)
let boxes_in_order (g : Qgm.t) = function
  | Depth_first -> Qgm.reachable_boxes g
  | Breadth_first ->
    let seen = Hashtbl.create 16 in
    let order = ref [] in
    let queue = Queue.create () in
    Queue.add g.Qgm.top queue;
    Hashtbl.replace seen g.Qgm.top ();
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let b = Qgm.box g id in
      order := b :: !order;
      List.iter
        (fun q ->
          if not (Hashtbl.mem seen q.Qgm.q_input) then begin
            Hashtbl.replace seen q.Qgm.q_input ();
            Queue.add q.Qgm.q_input queue
          end)
        b.Qgm.b_quants
    done;
    List.rev !order

(* order rules according to the strategy; Statistical re-shuffles per call *)
let order_rules strategy (rng : Random.State.t option) (rules : Rule.t list) =
  match strategy with
  | Sequential -> rules
  | Priority ->
    List.stable_sort
      (fun a b -> Int.compare b.Rule.rule_priority a.Rule.rule_priority)
      rules
  | Statistical { weights; _ } ->
    let rng = Option.get rng in
    (* weighted random order: sample without replacement *)
    let weight r =
      match List.assoc_opt r.Rule.rule_name weights with
      | Some w when w > 0.0 -> w
      | _ -> 1.0
    in
    let rec draw acc remaining =
      match remaining with
      | [] -> List.rev acc
      | _ ->
        let total = List.fold_left (fun s r -> s +. weight r) 0.0 remaining in
        let x = Random.State.float rng total in
        let rec pick acc_w = function
          | [ r ] -> r
          | r :: rest ->
            let acc_w = acc_w +. weight r in
            if x < acc_w then r else pick acc_w rest
          | [] -> assert false
        in
        let chosen = pick 0.0 remaining in
        draw (chosen :: acc)
          (List.filter (fun r -> r.Rule.rule_name <> chosen.Rule.rule_name) remaining)
    in
    draw [] rules

(** Runs [rules] on [g] to fixpoint (no rule's condition holds anywhere)
    or until [budget] rule firings have happened.  When the budget runs
    out, processing "stops at a consistent state of QGM": the engine
    never interrupts an action.  [check_each] re-verifies QGM
    consistency after every firing (used by tests and by DBCs debugging
    new rules).

    Returns engine statistics. *)
let run ?(strategy = Sequential) ?(search = Depth_first) ?budget
    ?(check_each = false) ?(tracer = Sb_obs.Trace.noop) ~(rules : Rule.t list)
    (g : Qgm.t) : stats =
  let stats = fresh_stats () in
  match budget with
  | Some b when b <= 0 ->
    (* a zero budget cannot fire anything: return before examining any
       box (and before garbage collection), leaving the QGM untouched *)
    stats.budget_exhausted <- true;
    stats
  | _ ->
  let rng =
    match strategy with
    | Statistical { seed; _ } -> Some (Random.State.make [| seed |])
    | Sequential | Priority -> None
  in
  let fire rule ctx =
    (match budget with
    | Some b when stats.rules_fired >= b ->
      stats.budget_exhausted <- true;
      raise Budget_exhausted
    | _ -> ());
    if Sb_obs.Trace.enabled tracer then
      Sb_obs.Trace.with_span tracer "rewrite.fire"
        ~attrs:
          [
            ("rule", rule.Rule.rule_name);
            ( "budget_remaining",
              match budget with
              | Some b -> string_of_int (b - stats.rules_fired)
              | None -> "inf" );
            ("boxes_before", string_of_int (Hashtbl.length g.Qgm.boxes));
          ]
        (fun () ->
          rule.Rule.action ctx;
          Sb_obs.Trace.add_attr tracer "boxes_after"
            (string_of_int (Hashtbl.length g.Qgm.boxes)))
    else rule.Rule.action ctx;
    stats.rules_fired <- stats.rules_fired + 1;
    record_firing stats rule.Rule.rule_name;
    Logs.debug (fun m -> m "rewrite: fired %s on box %d" rule.Rule.rule_name ctx.Rule.box.Qgm.b_id);
    if check_each then begin
      match Check.check g with
      | [] -> ()
      | errs ->
        Qgm.error "rule %s left QGM inconsistent: %s" rule.Rule.rule_name
          (String.concat "; " errs)
    end
  in
  (try
     let progress = ref true in
     while !progress do
       progress := false;
       stats.passes <- stats.passes + 1;
       let boxes = boxes_in_order g search in
       List.iter
         (fun (b : Qgm.box) ->
           (* a box may have been disconnected by an earlier rule in
              this pass *)
           if Hashtbl.mem g.Qgm.boxes b.Qgm.b_id then begin
             let ctx = { Rule.graph = g; box = b } in
             let ordered = order_rules strategy rng rules in
             List.iter
               (fun rule ->
                 stats.rules_examined <- stats.rules_examined + 1;
                 record_attempt stats rule.Rule.rule_name;
                 if
                   Hashtbl.mem g.Qgm.boxes b.Qgm.b_id
                   && rule.Rule.condition ctx
                 then begin
                   fire rule ctx;
                   progress := true
                 end)
               ordered
           end)
         boxes
     done
   with Budget_exhausted -> ());
  Qgm.garbage_collect g;
  stats
