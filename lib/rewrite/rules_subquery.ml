(** Subquery-to-join conversion — the paper's Rule 1:

    {v
    IF OP1.type=Select AND Q2.type='E' AND
       (at each evaluation of the existential predicate at most one
        tuple of T2 satisfies the predicate)
    THEN Q2.type = 'F';  /*convert to join*/
    v}

    The "at most one tuple" premise is established from declared UNIQUE
    columns.  When it cannot be established, a more general rule (after
    [KIM82, GANS87]) still converts — by forcing duplicate elimination
    on the subquery — but since that is not always cheaper, it emits a
    CHOOSE box linking both alternatives for the cost-based optimizer to
    decide (section 5's "we have therefore added a new operation,
    CHOOSE, to QGM to link together the alternatives"). *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
open Rules_util
open Sb_storage

type candidate = {
  cd_pred : Qgm.pred;
  cd_quant : Qgm.quant;  (** the E quantifier *)
  cd_sub : Qgm.box;  (** the subquery box *)
  cd_inner : Qgm.expr;  (** predicate under the Quantified node *)
  cd_unique : bool;  (** at most one match guaranteed *)
}

(** Matches a whole-conjunct existential membership predicate
    [Quantified(qE, x = qE.c0)] on a SELECT box. *)
let candidate ~catalog g (b : Qgm.box) : candidate option =
  if b.Qgm.b_kind <> Qgm.Select then None
  else
    List.find_map
      (fun (p : Qgm.pred) ->
        match p.Qgm.p_expr with
        | Qgm.Quantified (qid, inner) -> (
          let q = Qgm.quant g qid in
          if q.Qgm.q_type <> Qgm.E || q.Qgm.q_parent <> b.Qgm.b_id then None
          else
            let sub = Qgm.box g q.Qgm.q_input in
            if
              (not (has_single_user g sub.Qgm.b_id))
              || Qgm.is_recursive g sub.Qgm.b_id
              || quantified_uses g qid <> 1
            then None
            else
              (* inner must be an equality binding the subquery's output *)
              match inner with
              | Qgm.Bin (Ast.Eq, a, Qgm.Col (qid', 0))
                when qid' = qid && not (List.mem qid (Qgm.quant_refs a)) ->
                (* the equality binds the whole (1-column) head, so the
                   conversion is duplicate-free when that head covers a
                   derived key of the subquery box: DISTINCT, a GROUP BY
                   head, a pass-through of a declared-UNIQUE column, or
                   an outright single-row guarantee all qualify *)
                let unique =
                  Qgm.arity sub = 1
                  && (sub.Qgm.b_distinct
                     || derives_key g sub.Qgm.b_id [ 0 ] ~catalog)
                in
                Some
                  { cd_pred = p; cd_quant = q; cd_sub = sub; cd_inner = inner;
                    cd_unique = unique }
              | _ -> None)
        | _ -> None)
      b.Qgm.b_preds

let convert (cd : candidate) =
  cd.cd_quant.Qgm.q_type <- Qgm.F;
  cd.cd_pred.Qgm.p_expr <- cd.cd_inner

(** Rule 1 proper: conversion when at most one match is guaranteed. *)
let subquery_to_join ~catalog : Rule.t =
  Rule.make ~priority:55 ~name:"subquery_to_join" ~rule_class:"subquery"
    ~condition:(fun ctx ->
      match candidate ~catalog ctx.Rule.graph ctx.Rule.box with
      | Some cd -> cd.cd_unique
      | None -> false)
    ~action:(fun ctx ->
      match candidate ~catalog ctx.Rule.graph ctx.Rule.box with
      | Some cd when cd.cd_unique -> convert cd
      | Some _ | None -> ())
    ()

(** Is [b] already an alternative of a CHOOSE box?  Prevents the general
    rule from expanding its own output forever. *)
let under_choose g (b : Qgm.box) =
  List.exists
    (fun q -> (Qgm.box g q.Qgm.q_parent).Qgm.b_kind = Qgm.Choose)
    (Qgm.users_of_box g b.Qgm.b_id)

(** General conversion via CHOOSE: alternative 1 keeps the subquery,
    alternative 2 converts to a join over the de-duplicated subquery. *)
let subquery_to_join_choose ~catalog : Rule.t =
  Rule.make ~priority:20 ~name:"subquery_to_join_choose" ~rule_class:"subquery"
    ~condition:(fun ctx ->
      let g = ctx.Rule.graph and b = ctx.Rule.box in
      (not (under_choose g b))
      && b.Qgm.b_order = []
      && b.Qgm.b_limit = None
      &&
      match candidate ~catalog g b with
      | Some cd -> not cd.cd_unique
      | None -> false)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph and b = ctx.Rule.box in
      match candidate ~catalog g b with
      | Some cd when not cd.cd_unique ->
        (* copy the subtree, convert the copy, link both with CHOOSE *)
        let copy_id = Qgm.copy_subgraph g b.Qgm.b_id in
        let copy = Qgm.box g copy_id in
        (match candidate ~catalog g copy with
        | Some cd' ->
          cd'.cd_sub.Qgm.b_distinct <- true;
          convert cd'
        | None -> Qgm.error "choose: conversion candidate lost in copy");
        let choose = Qgm.new_box g ~label:"CHOOSE" Qgm.Choose in
        choose.Qgm.b_head <-
          List.map
            (fun hc -> { hc with Qgm.hc_expr = None })
            b.Qgm.b_head;
        (* all users of b now range over the CHOOSE box *)
        List.iter
          (fun (u : Qgm.quant) -> u.Qgm.q_input <- choose.Qgm.b_id)
          (Qgm.users_of_box g b.Qgm.b_id);
        if g.Qgm.top = b.Qgm.b_id then g.Qgm.top <- choose.Qgm.b_id;
        ignore (Qgm.new_quant g ~label:"alt1" ~parent:choose.Qgm.b_id ~input:b.Qgm.b_id Qgm.F);
        ignore (Qgm.new_quant g ~label:"alt2" ~parent:choose.Qgm.b_id ~input:copy_id Qgm.F)
      | Some _ | None -> ())
    ()

(** EXISTS with a constant-true inner predicate over an uncorrelated
    subquery that itself has predicates benefits from nothing here; it
    is executed as an exists-join.  But [Quantified(E, true)] where the
    subquery is empty-headed pass-through can at least drop duplicates
    work: mark the subquery box as permitting duplicate elimination. *)
let exists_distinct : Rule.t =
  Rule.make ~priority:10 ~name:"exists_subquery_distinct" ~rule_class:"subquery"
    ~condition:(fun ctx ->
      let g = ctx.Rule.graph and b = ctx.Rule.box in
      b.Qgm.b_kind = Qgm.Select
      && List.exists
           (fun (p : Qgm.pred) ->
             match p.Qgm.p_expr with
             | Qgm.Quantified (qid, Qgm.Lit (Value.Bool true)) -> (
               let q = Qgm.quant g qid in
               q.Qgm.q_type = Qgm.E
               &&
               let sub = Qgm.box g q.Qgm.q_input in
               (not sub.Qgm.b_distinct)
               && sub.Qgm.b_kind = Qgm.Select
               && Qgm.arity sub > 1
               && has_single_user g sub.Qgm.b_id)
             | _ -> false)
           b.Qgm.b_preds)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph and b = ctx.Rule.box in
      List.iter
        (fun (p : Qgm.pred) ->
          match p.Qgm.p_expr with
          | Qgm.Quantified (qid, Qgm.Lit (Value.Bool true)) ->
            let q = Qgm.quant g qid in
            if q.Qgm.q_type = Qgm.E then begin
              let sub = Qgm.box g q.Qgm.q_input in
              if
                sub.Qgm.b_kind = Qgm.Select
                && Qgm.arity sub > 1
                && has_single_user g sub.Qgm.b_id
              then begin
                (* existence only needs one column *)
                sub.Qgm.b_head <- [ List.hd sub.Qgm.b_head ]
              end
            end
          | _ -> ())
        b.Qgm.b_preds)
    ()

let rules ~catalog =
  [ subquery_to_join ~catalog; subquery_to_join_choose ~catalog; exists_distinct ]
