#!/bin/sh
# Source-level lock-discipline lint.
#
# Every lock in the tree must be a named, leveled Sb_conc.Lock /
# Sb_conc.Rwlock (or the Promise leaf), so the discipline checker can
# see it.  A bare Mutex or Condition anywhere else is invisible to the
# level-ordering, race and deadlock analyses — this script fails the
# build on any such use outside lib/conc, where the primitives are
# wrapped (and where the checker's own leaf mutex lives).
#
# Usage: tools/check_lock_discipline.sh   (from the repository root)

set -eu

cd "$(dirname "$0")/.."

status=0
hits=$(grep -rn 'Mutex\.create\|Mutex\.lock\|Condition\.' \
         lib bin test \
         --include='*.ml' --include='*.mli' \
       | grep -v '^lib/conc/' || true)

if [ -n "$hits" ]; then
  echo "lock-discipline lint: raw Mutex/Condition outside lib/conc:" >&2
  echo "$hits" >&2
  echo "use Sb_conc.Lock / Sb_conc.Rwlock (named, leveled) instead." >&2
  status=1
else
  echo "lock-discipline lint: OK (no raw Mutex/Condition outside lib/conc)"
fi

exit $status
