(** Standalone fuzzing driver.

    [fuzz_main --fuzz N --seed S] runs N deterministic differential
    fuzz cases; [--replay PATH] replays one [.sbf] repro file or every
    repro under a directory.  Exit status is the number of
    discrepancies (capped at 125), so CI can gate on it directly. *)

let usage () =
  prerr_endline
    "usage: fuzz_main [--fuzz N] [--seed S] [--out DIR] [--metrics]\n\
    \       fuzz_main --replay PATH   (a .sbf file or a directory)";
  exit 2

type opts = {
  mutable cases : int;
  mutable seed : int;
  mutable out : string;
  mutable metrics : bool;
  mutable replay : string option;
}

let parse_args () =
  let o =
    { cases = 100; seed = 42; out = "_fuzz_failures"; metrics = false;
      replay = None }
  in
  let rec go = function
    | [] -> o
    | "--fuzz" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> o.cases <- n
      | _ -> usage ());
      go rest
    | "--seed" :: s :: rest ->
      (match int_of_string_opt s with Some s -> o.seed <- s | None -> usage ());
      go rest
    | "--out" :: dir :: rest ->
      o.out <- dir;
      go rest
    | "--metrics" :: rest ->
      o.metrics <- true;
      go rest
    | "--replay" :: path :: rest ->
      o.replay <- Some path;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let show_verdict path = function
  | Sb_fuzz.Oracle.Pass ->
    Printf.printf "PASS  %s\n" path;
    0
  | Sb_fuzz.Oracle.Rejected msg ->
    Printf.printf "REJECT %s (%s)\n" path msg;
    1
  | Sb_fuzz.Oracle.Fail { config; detail } ->
    Printf.printf "FAIL  %s [%s] %s\n" path config detail;
    1

let replay path =
  if Sys.is_directory path then begin
    let results = Sb_fuzz.Harness.replay_dir path in
    if results = [] then begin
      Printf.printf "no .sbf repros under %s\n" path;
      0
    end
    else
      List.fold_left (fun acc (p, v) -> acc + show_verdict p v) 0 results
  end
  else show_verdict path (Sb_fuzz.Harness.replay_file path)

let () =
  let o = parse_args () in
  match o.replay with
  | Some path ->
    if not (Sys.file_exists path) then begin
      Printf.eprintf "no such file or directory: %s\n" path;
      exit 2
    end;
    exit (min 125 (replay path))
  | None ->
    let metrics = Sb_obs.Metrics.create () in
    let stats =
      Sb_fuzz.Harness.run ~metrics ~out_dir:o.out ~log:print_endline
        ~seed:o.seed ~n:o.cases ()
    in
    print_string (Sb_fuzz.Harness.report stats);
    if o.metrics then print_string (Sb_obs.Metrics.dump metrics);
    exit (min 125 (List.length stats.Sb_fuzz.Harness.st_failures))
