(** Standalone fuzzing driver.

    [fuzz_main --fuzz N --seed S] runs N deterministic differential
    fuzz cases; [--replay PATH] replays one [.sbf] repro file or every
    repro under a directory; [--server N] replays a generated workload
    through N concurrent server sessions and differentially compares
    every result against a single-caller oracle; [--crash] injects a
    simulated crash at every reachable ordinal of every durability
    fault site, recovers, and compares against a committed-prefix
    oracle; [--races N] hammers N concurrent sessions with a mixed
    DML / DDL / ANALYZE workload under the armed lock-discipline
    checker and fails on any diagnosis; [--qes] narrows the oracle
    matrix to the vectorized-engine differential (budget-0
    tuple-at-a-time reference vs. the batch-at-a-time engine on the
    same plans).  Exit status is the number of discrepancies (capped
    at 125), so CI can gate on it directly. *)

let usage () =
  prerr_endline
    "usage: fuzz_main [--fuzz N] [--seed S] [--out DIR] [--metrics]\n\
    \                 [--rules native|dsl|both] [--qes]\n\
    \       fuzz_main --server N [--fuzz CASES] [--seed S]\n\
    \       fuzz_main --crash [--fuzz CASES] [--seed S] [--out DIR]\n\
    \       fuzz_main --races N [--fuzz CASES] [--seed S] [--graph FILE]\n\
    \       fuzz_main --replay PATH   (a .sbf file or a directory)\n\
    \       fuzz_main --rules-status  (verify the builtin DSL rules; any\n\
    \                                  Rejected builtin is a build failure)";
  exit 2

type opts = {
  mutable cases : int;
  mutable seed : int;
  mutable out : string;
  mutable metrics : bool;
  mutable replay : string option;
  mutable server : int option;
  mutable rules : Sb_fuzz.Oracle.rules_mode;
  mutable qes : bool;
  mutable rules_status : bool;
  mutable crash : bool;
  mutable races : int option;
  mutable graph : string option;
}

let parse_args () =
  let o =
    { cases = 100; seed = 42; out = "_fuzz_failures"; metrics = false;
      replay = None; server = None; rules = Sb_fuzz.Oracle.Native_rules;
      qes = false; rules_status = false; crash = false; races = None;
      graph = None }
  in
  let rec go = function
    | [] -> o
    | "--fuzz" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> o.cases <- n
      | _ -> usage ());
      go rest
    | "--seed" :: s :: rest ->
      (match int_of_string_opt s with Some s -> o.seed <- s | None -> usage ());
      go rest
    | "--out" :: dir :: rest ->
      o.out <- dir;
      go rest
    | "--metrics" :: rest ->
      o.metrics <- true;
      go rest
    | "--replay" :: path :: rest ->
      o.replay <- Some path;
      go rest
    | "--server" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> o.server <- Some n
      | _ -> usage ());
      go rest
    | "--rules" :: mode :: rest ->
      (match mode with
      | "native" -> o.rules <- Sb_fuzz.Oracle.Native_rules
      | "dsl" -> o.rules <- Sb_fuzz.Oracle.Dsl_rules
      | "both" -> o.rules <- Sb_fuzz.Oracle.Both_rules
      | _ -> usage ());
      go rest
    | "--qes" :: rest ->
      o.qes <- true;
      go rest
    | "--rules-status" :: rest ->
      o.rules_status <- true;
      go rest
    | "--crash" :: rest ->
      o.crash <- true;
      go rest
    | "--races" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> o.races <- Some n
      | _ -> usage ());
      go rest
    | "--graph" :: path :: rest ->
      o.graph <- Some path;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

(* --rules-status: strict-mode verification of the builtin DSL rules.
   Every port must come out of the static verifier Verified or
   Conditional (with its guards inserted); a Rejected builtin — or a
   verdict drifting to Rejected after a verifier change — fails the
   build.  Exit status is the number of rejected builtins. *)
let rules_status () =
  let module Dsl = Sb_ruledsl.Dsl in
  let module Verify = Sb_ruledsl.Verify in
  let rejected = ref 0 in
  List.iter
    (fun (r : Dsl.rule) ->
      let v = Verify.verify r in
      (match v.Verify.v_status with
      | Verify.Rejected _ -> incr rejected
      | Verify.Verified | Verify.Conditional _ -> ());
      Printf.printf "%-28s %s\n" r.Dsl.name
        (Verify.status_to_string v.Verify.v_status))
    Sb_ruledsl.Builtin.all;
  Printf.printf "builtin DSL rules: %d, rejected: %d\n"
    (List.length Sb_ruledsl.Builtin.all)
    !rejected;
  !rejected

let show_verdict path = function
  | Sb_fuzz.Oracle.Pass ->
    Printf.printf "PASS  %s\n" path;
    0
  | Sb_fuzz.Oracle.Rejected msg ->
    Printf.printf "REJECT %s (%s)\n" path msg;
    1
  | Sb_fuzz.Oracle.Fail { config; detail } ->
    Printf.printf "FAIL  %s [%s] %s\n" path config detail;
    1

let replay path =
  if Sys.is_directory path then begin
    let results = Sb_fuzz.Harness.replay_dir path in
    if results = [] then begin
      Printf.printf "no .sbf repros under %s\n" path;
      0
    end
    else
      List.fold_left (fun acc (p, v) -> acc + show_verdict p v) 0 results
  end
  else show_verdict path (Sb_fuzz.Harness.replay_file path)

(* --server N: one generated catalog, [cases] generated queries, every
   query run both by a single plain caller (the oracle) and through the
   concurrent front end — N sessions on N domains, queries dealt
   round-robin.  Outcomes must agree as bags; failures must fail on
   both sides.  Pure in (seed, cases, sessions). *)
let server_differential ~sessions ~cases ~seed =
  let module Gen = Sb_fuzz.Gen in
  let module Oracle = Sb_fuzz.Oracle in
  let module Sprng = Sb_fuzz.Sprng in
  let module Server = Sb_server in
  let module Err = Sb_resil.Err in
  let rng = Sprng.create seed in
  let catalog = Gen.gen_catalog (Sprng.split rng) in
  let ddl = Gen.ddl_of_catalog catalog in
  let texts =
    Array.init cases (fun _ ->
        Gen.query_text (Gen.gen_query (Sprng.split rng) catalog))
  in
  let odb = Starburst.create () in
  List.iter (fun stmt -> ignore (Starburst.run odb stmt)) ddl;
  let expected = Array.map (Oracle.run_outcome odb) texts in
  (* no shedding here: a greedy plan may pick a different (legitimate)
     LIMIT subset, which the bag comparison would misread as a bug *)
  let config =
    {
      (Server.default_config ()) with
      Server.max_inflight = max 16 (2 * sessions);
      degrade_inflight = max 16 (2 * sessions);
      session_inflight = 4;
    }
  in
  let server = Server.create ~config () in
  let boot = Server.session server in
  List.iter
    (fun stmt ->
      match Server.submit server boot stmt with
      | Ok _ -> ()
      | Error e -> failwith ("server DDL failed: " ^ Err.to_string e))
    ddl;
  Server.close_session server boot;
  let outcomes : Oracle.outcome option array = Array.make cases None in
  let worker d () =
    let s = Server.session server in
    for i = 0 to cases - 1 do
      if i mod sessions = d then begin
        let rec go attempts =
          match Server.submit server s texts.(i) with
          | Ok (Starburst.Rows { rows; _ }) -> Oracle.Rows rows
          | Ok _ -> Oracle.Rows []
          | Error e when e.Err.err_retryable && attempts < 5 ->
            go (attempts + 1)
          | Error e -> Oracle.Failed e
        in
        outcomes.(i) <- Some (go 0)
      end
    done;
    Server.close_session server s
  in
  let domains = Array.init sessions (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join domains;
  Server.shutdown server;
  let sort = List.sort Sb_storage.Tuple.compare in
  let agree i =
    match (expected.(i), outcomes.(i)) with
    | Oracle.Rows a, Some (Oracle.Rows b) ->
      List.equal (fun x y -> Sb_storage.Tuple.compare x y = 0) (sort a) (sort b)
    | Oracle.Failed _, Some (Oracle.Failed _) -> true
    | _ -> false
  in
  let failures = ref 0 and both_failed = ref 0 in
  for i = 0 to cases - 1 do
    (match expected.(i) with Oracle.Failed _ -> incr both_failed | _ -> ());
    if not (agree i) then begin
      incr failures;
      Printf.printf "DIFF  case %d (session %d): %s\n" i (i mod sessions)
        texts.(i)
    end
  done;
  Printf.printf
    "server-differential: %d cases x %d sessions, %d agree, %d failed on \
     both sides, %d discrepancies\n"
    cases sessions (cases - !failures) !both_failed !failures;
  !failures

(* --races N: the lock-discipline stress mode.  One generated catalog,
   N sessions on N domains, each driving a deterministic per-session
   mix of DML, per-session index churn (DDL, so the catalog epoch
   moves under concurrent lookups) and ANALYZE, with the discipline
   checker armed.  Any diagnosis — a lock-order violation,
   re-entrancy, unlock-without-lock, or a lockset race on an
   instrumented shared field — fails the sweep.  Statement outcomes
   are not compared (that is [--server]'s job); what must hold is that
   the armed checker stays silent, and its report is deterministic so
   CI can run the sweep twice and byte-diff the output. *)
let races_sweep ~sessions ~cases ~seed ~graph =
  let module Gen = Sb_fuzz.Gen in
  let module Sprng = Sb_fuzz.Sprng in
  let module Server = Sb_server in
  let module D = Sb_conc.Discipline in
  D.reset ();
  D.arm ();
  let rng = Sprng.create seed in
  let catalog = Gen.gen_catalog (Sprng.split rng) in
  let ddl = Gen.ddl_of_catalog catalog in
  let streams =
    Array.init sessions (fun d ->
        let srng = Sprng.create (seed + (1000 * (d + 1))) in
        let dml =
          Array.of_list
            (Gen.gen_dml_workload (Sprng.split srng) catalog ~n:(max 1 cases))
        in
        (* every generated table has an int key column [k] *)
        let table = (List.nth catalog (d mod List.length catalog)).Gen.t_name in
        Array.init cases (fun i ->
            if i mod 8 = 5 then Printf.sprintf "ANALYZE %s" table
            else if i mod 8 = 2 then begin
              (* churn a private index name: CREATE on even rounds,
                 DROP it again on odd ones *)
              let k = i / 8 in
              if k mod 2 = 0 then
                Printf.sprintf "CREATE INDEX rix_%d_%d ON %s (k) USING btree"
                  d (k / 2) table
              else Printf.sprintf "DROP INDEX rix_%d_%d ON %s" d (k / 2) table
            end
            else if i mod 2 = 0 then dml.(i mod Array.length dml)
            else Gen.query_text (Gen.gen_query (Sprng.split srng) catalog)))
  in
  (* generous admission: shedding is irrelevant here and rejections
     would just thin the interleavings the detector is meant to see *)
  let config =
    {
      (Server.default_config ()) with
      Server.max_inflight = max 32 (4 * sessions);
      degrade_inflight = max 32 (4 * sessions);
      session_inflight = 4;
    }
  in
  let server = Server.create ~config () in
  let boot = Server.session server in
  List.iter (fun stmt -> ignore (Server.submit server boot stmt)) ddl;
  Server.close_session server boot;
  let worker d () =
    let s = Server.session server in
    Array.iter
      (fun text ->
        let rec go attempts =
          match Server.submit server s text with
          | Ok _ -> ()
          | Error e when e.Sb_resil.Err.err_retryable && attempts < 5 ->
            go (attempts + 1)
          | Error _ -> ()
        in
        go 0)
      streams.(d);
    Server.close_session server s
  in
  let domains = Array.init sessions (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join domains;
  Server.shutdown server;
  (match graph with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (D.graph_dot ());
    close_out oc;
    Printf.eprintf "lock-acquisition graph written: %s\n" path);
  print_string (D.report_text ());
  let diags = List.length (D.diags ()) in
  Printf.printf "races: %d cases x %d sessions, %d diagnostics\n" cases
    sessions diags;
  D.disarm ();
  diags

(* --crash: crash-point differential sweep over the durability path.
   Deterministic in (seed, cases); mismatches are written under --out
   as runnable .sql repros. *)
let crash_sweep ~cases ~seed ~out ~metrics:want_metrics =
  let metrics = Sb_obs.Metrics.create () in
  let stats =
    Sb_fuzz.Crash.run ~metrics ~log:print_endline ~seed ~n:cases ()
  in
  print_string (Sb_fuzz.Crash.report stats);
  let mismatches = stats.Sb_fuzz.Crash.cs_mismatches in
  if mismatches <> [] then begin
    if not (Sys.file_exists out) then Unix.mkdir out 0o755;
    List.iteri
      (fun i m ->
        let path = Sb_fuzz.Crash.save_repro ~dir:out ~seed i m in
        Printf.printf "repro written: %s\n" path)
      mismatches
  end;
  if want_metrics then print_string (Sb_obs.Metrics.dump metrics);
  List.length mismatches + if stats.Sb_fuzz.Crash.cs_wal_off_ok then 0 else 1

let () =
  (* STARBURST_LOCKCHECK=1 arms the lock-discipline checker for any
     mode (--races always arms it itself) *)
  Sb_conc.Discipline.arm_from_env ();
  let o = parse_args () in
  if o.rules_status then exit (min 125 (rules_status ()))
  else if o.crash then
    exit
      (min 125
         (crash_sweep ~cases:o.cases ~seed:o.seed ~out:o.out
            ~metrics:o.metrics))
  else
  match o.races with
  | Some sessions ->
    exit
      (min 125
         (races_sweep ~sessions ~cases:o.cases ~seed:o.seed ~graph:o.graph))
  | None ->
  match o.server with
  | Some sessions ->
    exit (min 125 (server_differential ~sessions ~cases:o.cases ~seed:o.seed))
  | None ->
  match o.replay with
  | Some path ->
    if not (Sys.file_exists path) then begin
      Printf.eprintf "no such file or directory: %s\n" path;
      exit 2
    end;
    exit (min 125 (replay path))
  | None ->
    let metrics = Sb_obs.Metrics.create () in
    if o.rules <> Sb_fuzz.Oracle.Native_rules then
      Printf.printf "rules mode: %s\n" (Sb_fuzz.Oracle.rules_mode_name o.rules);
    if o.qes then
      print_endline
        "qes differential: tuple-at-a-time reference vs vectorized engine";
    let stats =
      Sb_fuzz.Harness.run ~rules:o.rules ~qes:o.qes ~metrics ~out_dir:o.out
        ~log:print_endline ~seed:o.seed ~n:o.cases ()
    in
    print_string (Sb_fuzz.Harness.report stats);
    if o.metrics then print_string (Sb_obs.Metrics.dump metrics);
    exit (min 125 (List.length stats.Sb_fuzz.Harness.st_failures))
