(** The Starburst interactive shell and script runner.

    {v
    starburst_shell                 # interactive REPL
    starburst_shell script.sql      # run a script
    starburst_shell -e "SELECT 1"   # one statement   (not valid: needs FROM)
    v}

    All bundled extensions (outer join, spatial, sampling, MAJORITY,
    statistics aggregates) are installed unless [--bare] is given.

    Meta-commands: [\stats] (execution counters and per-rule rewrite
    firings of the last query), [\limits] (session resource limits and
    the last statement's consumption), [\metrics] (Prometheus-style dump),
    [\trace] (span tree of the current tracer; enable with
    [SET trace = on]), [\check [query]] (catalog lints, or the full
    verification report of a query — same as [EXPLAIN VERIFY]),
    [\infer query] (inferred semantic properties — same as
    [EXPLAIN ANALYSIS]), [\q]. *)

let install_extensions db =
  Sb_extensions.Outer_join.install db;
  Sb_extensions.Spatial.install db;
  Sb_extensions.Sampling.install db;
  Sb_extensions.Majority.install db;
  Sb_extensions.Stats_fns.install db

let print_result db r =
  print_endline
    (Starburst.render_result
       ~registry:db.Starburst.Corona.catalog.Sb_storage.Catalog.datatypes r)

(* --- meta-commands --- *)

let print_stats db =
  let c = Starburst.counters db in
  let open Sb_qes.Exec in
  Printf.printf "execution counters (last query):\n";
  Printf.printf "  scanned=%d index_probes=%d shipped=%d sorted=%d output=%d\n"
    c.c_scanned c.c_index_probes c.c_shipped c.c_sorted c.c_output;
  Printf.printf
    "  sub_evals=%d sub_cache_hits=%d or_branch_evals=%d fixpoint_rounds=%d\n"
    c.c_sub_evals c.c_sub_cache_hits c.c_or_branch_evals c.c_fixpoint_rounds;
  match Starburst.last_rewrite db with
  | None -> print_endline "rewrite: (no rewritten query yet)"
  | Some stats ->
    let module Engine = Sb_rewrite.Engine in
    Printf.printf "rewrite: %d fired / %d examined in %d passes%s\n"
      stats.Engine.rules_fired stats.Engine.rules_examined stats.Engine.passes
      (if stats.Engine.budget_exhausted then " (budget exhausted)" else "");
    Printf.printf "  %-32s %7s %9s\n" "rule" "fires" "attempts";
    List.iter
      (fun (name, fires, attempts) ->
        if fires > 0 then
          Printf.printf "  %-32s %7d %9d\n" name fires attempts)
      (Engine.per_rule stats)

let print_limits db =
  let module Limits = Sb_resil.Limits in
  print_endline "session limits (SET limit_<name> = n, 0 = unlimited):";
  List.iter
    (fun (name, value) -> Printf.printf "  %-20s %s\n" name value)
    (Limits.describe (Starburst.limits db));
  print_endline "consumption (last statement):";
  List.iter
    (fun (name, used, limit) ->
      Printf.printf "  %-20s %d%s\n" name used
        (if limit = 0 then "" else Printf.sprintf " / %d" limit))
    (Limits.consumption (Starburst.last_gov db));
  (match Starburst.last_degraded db with
  | None -> ()
  | Some reason -> Printf.printf "degraded: %s\n" reason)

(* \check            — lint the catalog
   \check SELECT ...  — full verification report for the query *)
let print_check db rest =
  let module Lint = Sb_verify.Lint in
  match String.trim (String.concat " " rest) with
  | "" -> (
    match Lint.lint_catalog db.Starburst.Corona.catalog with
    | [] -> print_endline "catalog: no lint findings"
    | diags -> List.iter (fun d -> print_endline (Lint.diag_to_string d)) diags)
  | text -> (
    let text =
      match String.rindex_opt text ';' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    match Sb_hydrogen.Parser.query_text text with
    | wq -> (
      try print_string (Starburst.Corona.explain_verify db wq) with
      | Starburst.Error e ->
        Printf.printf "error: %s\n" (Starburst.Err.to_string e)
      | Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
      | Sb_optimizer.Generator.Unsupported msg ->
        Printf.printf "unsupported: %s\n" msg
      | Sb_qes.Exec.Runtime_error msg -> Printf.printf "runtime error: %s\n" msg)
    | exception Sb_hydrogen.Parser.Parse_error (msg, _) ->
      Printf.printf "parse error: %s\n" msg
    | exception Sb_hydrogen.Lexer.Lex_error (msg, _) ->
      Printf.printf "lex error: %s\n" msg)

(* \infer SELECT ...  — inferred properties, prover lints and the
   inference-tightened plan (EXPLAIN ANALYSIS) *)
let print_infer db rest =
  match String.trim (String.concat " " rest) with
  | "" -> print_endline "usage: \\infer SELECT ..."
  | text -> (
    let text =
      match String.rindex_opt text ';' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    match Sb_hydrogen.Parser.query_text text with
    | wq -> (
      try print_string (Starburst.Corona.explain_analysis db wq) with
      | Starburst.Error e ->
        Printf.printf "error: %s\n" (Starburst.Err.to_string e)
      | Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
      | Sb_optimizer.Generator.Unsupported msg ->
        Printf.printf "unsupported: %s\n" msg)
    | exception Sb_hydrogen.Parser.Parse_error (msg, _) ->
      Printf.printf "parse error: %s\n" msg
    | exception Sb_hydrogen.Lexer.Lex_error (msg, _) ->
      Printf.printf "lex error: %s\n" msg)

let meta_command db line =
  match String.split_on_char ' ' (String.trim line) with
  | "\\stats" :: _ -> print_stats db
  | "\\limits" :: _ -> print_limits db
  | "\\check" :: rest -> print_check db rest
  | "\\infer" :: rest -> print_infer db rest
  | "\\metrics" :: _ -> print_string (Starburst.metrics_dump db)
  | "\\trace" :: rest ->
    let tr = Starburst.tracer db in
    if not (Sb_obs.Trace.enabled tr) then
      print_endline "tracing is off; enable with SET trace = on"
    else if rest = [ "json" ] then print_endline (Sb_obs.Trace.to_json tr)
    else if rest = [ "clear" ] then Sb_obs.Trace.clear tr
    else print_string (Sb_obs.Trace.to_tree tr)
  | cmd :: _ -> Printf.printf "unknown meta-command %s\n" cmd
  | [] -> ()

let run_one db text =
  match Starburst.run db text with
  | r -> print_result db r
  | exception Starburst.Error e ->
    Printf.printf "error: %s\n" (Starburst.Err.to_string e)
  | exception Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
  | exception Sb_optimizer.Generator.Unsupported msg ->
    Printf.printf "unsupported: %s\n" msg
  | exception Sb_qes.Exec.Runtime_error msg -> Printf.printf "runtime error: %s\n" msg
  | exception Sb_storage.Value.Type_error msg -> Printf.printf "type error: %s\n" msg

let run_script db text =
  List.iter
    (fun stmt -> run_one db (Sb_hydrogen.Pretty.statement_to_string stmt))
    (Sb_hydrogen.Parser.script text)

let repl db =
  print_endline
    "Starburst shell — end statements with ';', \\stats \\limits \\metrics \\trace \\check \\infer, \\q to quit.";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "starburst> " else "       ...> ");
    match read_line () with
    | exception End_of_file -> ()
    | "\\q" | "\\quit" -> ()
    | line when Buffer.length buf = 0 && String.length line > 0 && line.[0] = '\\' ->
      meta_command db line;
      loop ()
    | line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.contains line ';' then begin
        Buffer.clear buf;
        (try run_script db text
         with
        | Sb_hydrogen.Parser.Parse_error (msg, _) -> Printf.printf "parse error: %s\n" msg
        | Sb_hydrogen.Lexer.Lex_error (msg, _) -> Printf.printf "lex error: %s\n" msg)
      end;
      loop ()
  in
  loop ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let bare = List.mem "--bare" args in
  let args = List.filter (fun a -> a <> "--bare") args in
  let db = Starburst.create () in
  if not bare then install_extensions db;
  match args with
  | [] -> repl db
  | [ "-e"; stmt ] -> run_one db stmt
  | [ path ] ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    (try run_script db text
     with
    | Sb_hydrogen.Parser.Parse_error (msg, _) -> Printf.printf "parse error: %s\n" msg
    | Sb_hydrogen.Lexer.Lex_error (msg, _) -> Printf.printf "lex error: %s\n" msg)
  | _ ->
    prerr_endline "usage: starburst_shell [--bare] [script.sql | -e STATEMENT]";
    exit 2
