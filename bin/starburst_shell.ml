(** The Starburst interactive shell and script runner.

    {v
    starburst_shell                 # interactive REPL
    starburst_shell script.sql      # run a script
    starburst_shell -e "SELECT 1"   # one statement   (not valid: needs FROM)
    v}

    All bundled extensions (outer join, spatial, sampling, MAJORITY,
    statistics aggregates) are installed unless [--bare] is given.

    Meta-commands: [\stats] (execution counters and per-rule rewrite
    firings of the last query), [\rules] (registered rewrite rules with
    origin, verification status and cumulative fire/attempt counts —
    same as [EXPLAIN RULES]), [\limits] (session resource limits and
    the last statement's consumption), [\metrics] (Prometheus-style dump),
    [\trace] (span tree of the current tracer; enable with
    [SET trace = on]), [\check [query]] (catalog lints, or the full
    verification report of a query — same as [EXPLAIN VERIFY]),
    [\infer query] (inferred semantic properties — same as
    [EXPLAIN ANALYSIS]), [\cache] (plan-cache counters), [\sessions]
    (open server sessions), [\q].

    [--server N] runs the REPL through an embedded {!Sb_server} with [N]
    worker domains (statements pass the admission controller and the
    shared plan cache); [--connect HOST:PORT] talks to a running
    [starburst-server] over its line protocol instead. *)

let install_extensions db =
  Sb_extensions.Outer_join.install db;
  Sb_extensions.Spatial.install db;
  Sb_extensions.Sampling.install db;
  Sb_extensions.Majority.install db;
  Sb_extensions.Stats_fns.install db

let print_result db r =
  print_endline
    (Starburst.render_result
       ~registry:db.Starburst.Corona.catalog.Sb_storage.Catalog.datatypes r)

(* --- meta-commands --- *)

let print_stats db =
  let c = Starburst.counters db in
  let open Sb_qes.Exec in
  Printf.printf "execution counters (last query):\n";
  Printf.printf "  scanned=%d index_probes=%d shipped=%d sorted=%d output=%d\n"
    c.c_scanned c.c_index_probes c.c_shipped c.c_sorted c.c_output;
  Printf.printf
    "  sub_evals=%d sub_cache_hits=%d or_branch_evals=%d fixpoint_rounds=%d\n"
    c.c_sub_evals c.c_sub_cache_hits c.c_or_branch_evals c.c_fixpoint_rounds;
  match Starburst.last_rewrite db with
  | None -> print_endline "rewrite: (no rewritten query yet)"
  | Some stats ->
    let module Engine = Sb_rewrite.Engine in
    Printf.printf "rewrite: %d fired / %d examined in %d passes%s\n"
      stats.Engine.rules_fired stats.Engine.rules_examined stats.Engine.passes
      (if stats.Engine.budget_exhausted then " (budget exhausted)" else "");
    Printf.printf "  %-32s %7s %9s\n" "rule" "fires" "attempts";
    List.iter
      (fun (name, fires, attempts) ->
        if fires > 0 then
          Printf.printf "  %-32s %7d %9d\n" name fires attempts)
      (Engine.per_rule stats)

let print_limits db =
  let module Limits = Sb_resil.Limits in
  print_endline "session limits (SET limit_<name> = n, 0 = unlimited):";
  List.iter
    (fun (name, value) -> Printf.printf "  %-20s %s\n" name value)
    (Limits.describe (Starburst.limits db));
  print_endline "consumption (last statement):";
  List.iter
    (fun (name, used, limit) ->
      Printf.printf "  %-20s %d%s\n" name used
        (if limit = 0 then "" else Printf.sprintf " / %d" limit))
    (Limits.consumption (Starburst.last_gov db));
  (match Starburst.last_degraded db with
  | None -> ()
  | Some reason -> Printf.printf "degraded: %s\n" reason)

(* \check            — lint the catalog
   \check SELECT ...  — full verification report for the query *)
let print_check db rest =
  let module Lint = Sb_verify.Lint in
  match String.trim (String.concat " " rest) with
  | "" -> (
    match Lint.lint_catalog db.Starburst.Corona.catalog with
    | [] -> print_endline "catalog: no lint findings"
    | diags -> List.iter (fun d -> print_endline (Lint.diag_to_string d)) diags)
  | text -> (
    let text =
      match String.rindex_opt text ';' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    match Sb_hydrogen.Parser.query_text text with
    | wq -> (
      try print_string (Starburst.Corona.explain_verify db wq) with
      | Starburst.Error e ->
        Printf.printf "error: %s\n" (Starburst.Err.to_string e)
      | Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
      | Sb_optimizer.Generator.Unsupported msg ->
        Printf.printf "unsupported: %s\n" msg)
    | exception Sb_hydrogen.Parser.Parse_error (msg, _) ->
      Printf.printf "parse error: %s\n" msg
    | exception Sb_hydrogen.Lexer.Lex_error (msg, _) ->
      Printf.printf "lex error: %s\n" msg)

(* \infer SELECT ...  — inferred properties, prover lints and the
   inference-tightened plan (EXPLAIN ANALYSIS) *)
let print_infer db rest =
  match String.trim (String.concat " " rest) with
  | "" -> print_endline "usage: \\infer SELECT ..."
  | text -> (
    let text =
      match String.rindex_opt text ';' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    match Sb_hydrogen.Parser.query_text text with
    | wq -> (
      try print_string (Starburst.Corona.explain_analysis db wq) with
      | Starburst.Error e ->
        Printf.printf "error: %s\n" (Starburst.Err.to_string e)
      | Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
      | Sb_optimizer.Generator.Unsupported msg ->
        Printf.printf "unsupported: %s\n" msg)
    | exception Sb_hydrogen.Parser.Parse_error (msg, _) ->
      Printf.printf "parse error: %s\n" msg
    | exception Sb_hydrogen.Lexer.Lex_error (msg, _) ->
      Printf.printf "lex error: %s\n" msg)

(* The shell runs either on a plain database handle or through an
   embedded multi-session server (one interactive session; statements
   pass the admission controller and the shared plan cache). *)
type backend =
  | Local of Starburst.t
  | Server of Sb_server.t * Sb_server.session

let backend_db = function
  | Local db -> db
  | Server (_, session) -> Sb_server.session_db session

let print_cache_stats (c : Starburst.Plan_cache.stats) =
  Printf.printf "plan cache:\n";
  Printf.printf "  hits          %d\n" c.Starburst.Plan_cache.hits;
  Printf.printf "  misses        %d\n" c.Starburst.Plan_cache.misses;
  Printf.printf "  evictions     %d\n" c.Starburst.Plan_cache.evictions;
  Printf.printf "  invalidations %d\n" c.Starburst.Plan_cache.invalidations;
  Printf.printf "  resident      %d\n" c.Starburst.Plan_cache.resident

let print_cache backend =
  (match backend with
  | Local db -> print_cache_stats (Starburst.plan_cache_stats db)
  | Server (server, _) -> print_cache_stats (Sb_server.cache_stats server));
  let db = backend_db backend in
  Printf.printf "  epoch         %d\n"
    (Sb_storage.Catalog.epoch db.Starburst.Corona.catalog)

let print_sessions backend =
  match backend with
  | Local _ ->
    print_endline "not in server mode (one implicit session); try --server N"
  | Server (server, session) ->
    List.iter
      (fun (id, inflight) ->
        Printf.printf "session %d  inflight %d%s\n" id inflight
          (if id = Sb_server.session_id session then "  (this shell)" else ""))
      (Sb_server.list_sessions server);
    let st = Sb_server.stats server in
    Printf.printf "admitted %d  shed %d  rejected %d\n" st.Sb_server.st_admitted
      st.Sb_server.st_shed st.Sb_server.st_rejected

let meta_command backend line =
  let db = backend_db backend in
  match String.split_on_char ' ' (String.trim line) with
  | "\\stats" :: _ -> print_stats db
  | "\\rules" :: _ ->
    (* same report as EXPLAIN RULES: every registered rule with origin,
       verification status and cumulative fire/attempt counts *)
    print_string (Starburst.rules_report db)
  | "\\limits" :: _ -> print_limits db
  | "\\check" :: rest -> print_check db rest
  | "\\infer" :: rest -> print_infer db rest
  | "\\cache" :: _ -> print_cache backend
  | "\\sessions" :: _ -> print_sessions backend
  | "\\wal" :: _ ->
    let s = Starburst.Corona.wal_stats db in
    Printf.printf "  enabled         %b\n" s.Sb_storage.Wal.s_enabled;
    Printf.printf "  needs_recovery  %b\n" s.Sb_storage.Wal.s_needs_recovery;
    Printf.printf "  lsn             %d\n" s.Sb_storage.Wal.s_lsn;
    Printf.printf "  stable records  %d\n" s.Sb_storage.Wal.s_stable;
    Printf.printf "  pending records %d\n" s.Sb_storage.Wal.s_pending;
    Printf.printf "  appends         %d\n" s.Sb_storage.Wal.s_appends;
    Printf.printf "  flushes         %d\n" s.Sb_storage.Wal.s_flushes;
    Printf.printf "  checkpoints     %d\n" s.Sb_storage.Wal.s_checkpoints;
    Printf.printf "  commits         %d\n" s.Sb_storage.Wal.s_commits;
    Printf.printf "  aborts          %d\n" s.Sb_storage.Wal.s_aborts;
    Printf.printf "  next txn        %d\n" s.Sb_storage.Wal.s_next_txn
  | "\\metrics" :: _ ->
    print_string (Starburst.metrics_dump db);
    (match backend with
    | Server (server, _) ->
      (* the server keeps its own registry (admission, plan cache, and
         the sb_lock / sb_race counters) separate from the session's *)
      Sb_server.sync_lock_metrics server;
      print_string (Sb_obs.Metrics.dump (Sb_server.metrics server))
    | Local _ -> ())
  | "\\locks" :: _ ->
    (match backend with
    | Server (server, _) -> Sb_server.sync_lock_metrics server
    | Local _ -> ());
    print_string (Sb_conc.Discipline.report_text ());
    if not (Sb_conc.Discipline.armed ()) then
      print_endline "  (checker disarmed; arm with STARBURST_LOCKCHECK=1)"
  | "\\trace" :: rest ->
    let tr = Starburst.tracer db in
    if not (Sb_obs.Trace.enabled tr) then
      print_endline "tracing is off; enable with SET trace = on"
    else if rest = [ "json" ] then print_endline (Sb_obs.Trace.to_json tr)
    else if rest = [ "clear" ] then Sb_obs.Trace.clear tr
    else print_string (Sb_obs.Trace.to_tree tr)
  | cmd :: _ -> Printf.printf "unknown meta-command %s\n" cmd
  | [] -> ()

let run_one backend text =
  match backend with
  | Server (server, session) -> (
    match Sb_server.submit server session text with
    | Ok r -> print_result (backend_db backend) r
    | Error e -> Printf.printf "error: %s\n" (Starburst.Err.to_string e))
  | Local db -> (
    match Starburst.run db text with
    | r -> print_result db r
    | exception Starburst.Error e ->
      Printf.printf "error: %s\n" (Starburst.Err.to_string e)
    | exception Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
    | exception Sb_optimizer.Generator.Unsupported msg ->
      Printf.printf "unsupported: %s\n" msg
    | exception Sb_storage.Value.Type_error msg -> Printf.printf "type error: %s\n" msg)

let run_script backend text =
  List.iter
    (fun stmt -> run_one backend (Sb_hydrogen.Pretty.statement_to_string stmt))
    (Sb_hydrogen.Parser.script text)

let repl backend =
  print_endline
    "Starburst shell — end statements with ';', \\stats \\rules \\limits \\metrics \\trace \\check \\infer \\cache \\sessions \\wal \\locks, \\q to quit.";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "starburst> " else "       ...> ");
    match read_line () with
    | exception End_of_file -> ()
    | "\\q" | "\\quit" -> ()
    | line when Buffer.length buf = 0 && String.length line > 0 && line.[0] = '\\' ->
      meta_command backend line;
      loop ()
    | line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.contains line ';' then begin
        Buffer.clear buf;
        (try run_script backend text
         with
        | Sb_hydrogen.Parser.Parse_error (msg, _) -> Printf.printf "parse error: %s\n" msg
        | Sb_hydrogen.Lexer.Lex_error (msg, _) -> Printf.printf "lex error: %s\n" msg)
      end;
      loop ()
  in
  loop ()

(* --- remote mode: line-protocol client for starburst-server --- *)

let connect_repl host port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  let inp = Unix.in_channel_of_descr fd in
  let out = Unix.out_channel_of_descr fd in
  Printf.printf
    "connected to %s:%d — end statements with ';', \\cache \\sessions \\stats \\wal, \\q to quit.\n"
    host port;
  let read_response () =
    let rec go () =
      match input_line inp with
      | "." -> ()
      | line ->
        print_endline line;
        go ()
    in
    go ()
  in
  (try
     let quit = ref false in
     while not !quit do
       print_string "starburst> ";
       match read_line () with
       | exception End_of_file -> quit := true
       | "\\q" | "\\quit" ->
         output_string out "\\quit\n";
         flush out;
         quit := true
       | line ->
         output_string out line;
         output_char out '\n';
         flush out;
         let trimmed = String.trim line in
         (* the server replies to complete statements and meta-commands *)
         if
           (String.length trimmed > 0 && trimmed.[0] = '\\')
           || (String.length trimmed > 0
              && trimmed.[String.length trimmed - 1] = ';')
         then read_response ()
     done
   with End_of_file | Sys_error _ -> print_endline "server closed the connection");
  try Unix.close fd with Unix.Unix_error _ -> ()

let () =
  (* STARBURST_LOCKCHECK=1 arms the lock-discipline checker for the
     whole process; \locks renders what it has seen *)
  Sb_conc.Discipline.arm_from_env ();
  let args = Array.to_list Sys.argv |> List.tl in
  let bare = List.mem "--bare" args in
  let args = List.filter (fun a -> a <> "--bare") args in
  (* --connect HOST:PORT — remote line-protocol client *)
  let rec find_connect = function
    | "--connect" :: target :: _ -> Some target
    | _ :: rest -> find_connect rest
    | [] -> None
  in
  match find_connect args with
  | Some target -> (
    match String.split_on_char ':' target with
    | [ host; port ] -> (
      match int_of_string_opt port with
      | Some port -> connect_repl host port
      | None ->
        prerr_endline "usage: starburst_shell --connect HOST:PORT";
        exit 2)
    | _ ->
      prerr_endline "usage: starburst_shell --connect HOST:PORT";
      exit 2)
  | None ->
    (* --server N — embedded multi-session server with N worker domains *)
    let rec extract_server acc = function
      | "--server" :: n :: rest -> (int_of_string_opt n, List.rev acc @ rest)
      | a :: rest -> extract_server (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    let server_workers, args = extract_server [] args in
    let backend =
      match server_workers with
      | Some workers ->
        let config =
          {
            (Sb_server.default_config ()) with
            Sb_server.workers;
            max_inflight = 4 * workers;
            degrade_inflight = 2 * workers;
          }
        in
        let server =
          Sb_server.create ~config
            ~install:(if bare then fun _ -> () else install_extensions)
            ()
        in
        Server (server, Sb_server.session server)
      | None ->
        let db = Starburst.create () in
        if not bare then install_extensions db;
        Local db
    in
    (match args with
    | [] -> repl backend
    | [ "-e"; stmt ] -> run_one backend stmt
    | [ path ] ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      (try run_script backend text
       with
      | Sb_hydrogen.Parser.Parse_error (msg, _) -> Printf.printf "parse error: %s\n" msg
      | Sb_hydrogen.Lexer.Lex_error (msg, _) -> Printf.printf "lex error: %s\n" msg)
    | _ ->
      prerr_endline
        "usage: starburst_shell [--bare] [--server N | --connect HOST:PORT] [script.sql | -e STATEMENT]";
      exit 2);
    match backend with
    | Server (server, _) -> Sb_server.shutdown server
    | Local _ -> ()
