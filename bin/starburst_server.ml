(* starburst-server: a line-protocol TCP front end over Sb_server.
   One connection = one session.  Statements are terminated by a line
   ending in ';' (or a lone ';'); each response is the rendered result
   followed by a line containing a single '.'.  Meta-commands:
   \cache (shared plan-cache counters), \sessions, \stats, \quit. *)

module Server = Sb_server
module Corona = Starburst.Corona
module Err = Sb_resil.Err

let send out lines =
  List.iter
    (fun l ->
      output_string out l;
      output_char out '\n')
    lines;
  output_string out ".\n";
  flush out

let pc_lines (c : Starburst.Plan_cache.stats) =
  [
    Fmt.str "hits          %d" c.Starburst.Plan_cache.hits;
    Fmt.str "misses        %d" c.Starburst.Plan_cache.misses;
    Fmt.str "evictions     %d" c.Starburst.Plan_cache.evictions;
    Fmt.str "invalidations %d" c.Starburst.Plan_cache.invalidations;
    Fmt.str "resident      %d" c.Starburst.Plan_cache.resident;
  ]

let meta server line =
  match String.trim line with
  | "\\cache" -> Some (pc_lines (Server.cache_stats server))
  | "\\sessions" ->
    Some
      (List.map
         (fun (id, inflight) -> Fmt.str "session %d  inflight %d" id inflight)
         (Server.list_sessions server))
  | "\\stats" ->
    let st = Server.stats server in
    Some
      [
        Fmt.str "sessions %d  inflight %d  admitted %d  shed %d  rejected %d  epoch %d"
          st.Server.st_sessions st.Server.st_inflight st.Server.st_admitted
          st.Server.st_shed st.Server.st_rejected st.Server.st_epoch;
      ]
  | _ -> None

let handle_connection server fd =
  let inp = Unix.in_channel_of_descr fd in
  let out = Unix.out_channel_of_descr fd in
  let session = Server.session server in
  let buf = Buffer.create 256 in
  let registry = (Server.catalog server).Sb_storage.Catalog.datatypes in
  let run_statement text =
    match Server.submit server session text with
    | Ok result ->
      send out (String.split_on_char '\n' (Corona.render_result ~registry result))
    | Error e -> send out [ "error: " ^ Err.to_string e ]
  in
  (try
     let quit = ref false in
     while not !quit do
       let line = input_line inp in
       let trimmed = String.trim line in
       if Buffer.length buf = 0 && trimmed = "\\quit" then quit := true
       else
         match if Buffer.length buf = 0 then meta server line else None with
         | Some lines -> send out lines
         | None ->
           Buffer.add_string buf line;
           Buffer.add_char buf '\n';
           if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
           then begin
             let text = Buffer.contents buf in
             Buffer.clear buf;
             if String.trim text <> ";" then run_statement text
             else send out []
           end
     done
   with End_of_file | Sys_error _ -> ());
  Server.close_session server session;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let serve ~host ~port ~workers ~once =
  let config =
    match workers with
    | None -> Server.default_config ()
    | Some w ->
      {
        (Server.default_config ()) with
        Server.workers = w;
        max_inflight = 4 * w;
        degrade_inflight = 2 * w;
      }
  in
  let server = Server.create ~config () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  Fmt.pr "starburst-server listening on %s:%d (%d workers)@." host actual_port
    config.Server.workers;
  if once then begin
    (* single-connection mode, used by tests and scripted clients *)
    let fd, _ = Unix.accept sock in
    handle_connection server fd;
    Unix.close sock;
    Server.shutdown server
  end
  else
    while true do
      let fd, _ = Unix.accept sock in
      ignore (Thread.create (fun () -> handle_connection server fd) ())
    done

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Address to bind.")

let port =
  Arg.(value & opt int 5447 & info [ "port"; "p" ] ~doc:"TCP port (0 = ephemeral).")

let workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers"; "w" ] ~doc:"Worker-pool domains (default: sized from cores).")

let once =
  Arg.(
    value & flag
    & info [ "once" ] ~doc:"Serve a single connection, then exit (for tests).")

let cmd =
  let doc = "line-protocol TCP front end for Starburst" in
  Cmd.v
    (Cmd.info "starburst-server" ~doc)
    Term.(
      const (fun host port workers once -> serve ~host ~port ~workers ~once)
      $ host $ port $ workers $ once)

let () = exit (Cmd.eval cmd)
