(* starburst-server: a line-protocol TCP front end over Sb_server.
   One connection = one session.  Statements are terminated by a line
   ending in ';' (or a lone ';'); each response is the rendered result
   followed by a line containing a single '.'.  Meta-commands:
   \cache (shared plan-cache counters), \sessions, \stats, \wal, \quit.

   With --wal-file the stable log persists across restarts: the server
   loads it on boot, runs crash recovery when it holds records, and
   saves it after every flush/checkpoint — so kill -9 loses nothing
   that was committed.  SIGINT/SIGTERM shut down gracefully: stop
   accepting connections, drain in-flight statements, force the log,
   exit 0. *)

module Server = Sb_server
module Corona = Starburst.Corona
module Err = Sb_resil.Err
module Wal = Sb_storage.Wal

let send out lines =
  List.iter
    (fun l ->
      output_string out l;
      output_char out '\n')
    lines;
  output_string out ".\n";
  flush out

let pc_lines (c : Starburst.Plan_cache.stats) =
  [
    Fmt.str "hits          %d" c.Starburst.Plan_cache.hits;
    Fmt.str "misses        %d" c.Starburst.Plan_cache.misses;
    Fmt.str "evictions     %d" c.Starburst.Plan_cache.evictions;
    Fmt.str "invalidations %d" c.Starburst.Plan_cache.invalidations;
    Fmt.str "resident      %d" c.Starburst.Plan_cache.resident;
  ]

let meta server line =
  match String.trim line with
  | "\\cache" -> Some (pc_lines (Server.cache_stats server))
  | "\\sessions" ->
    Some
      (List.map
         (fun (id, inflight) -> Fmt.str "session %d  inflight %d" id inflight)
         (Server.list_sessions server))
  | "\\stats" ->
    let st = Server.stats server in
    Some
      [
        Fmt.str "sessions %d  inflight %d  admitted %d  shed %d  rejected %d  epoch %d"
          st.Server.st_sessions st.Server.st_inflight st.Server.st_admitted
          st.Server.st_shed st.Server.st_rejected st.Server.st_epoch;
      ]
  | "\\wal" ->
    let s = Server.wal_stats server in
    Some
      [
        Fmt.str "enabled %b  needs_recovery %b" s.Wal.s_enabled
          s.Wal.s_needs_recovery;
        Fmt.str "lsn %d  stable %d  pending %d  next_txn %d" s.Wal.s_lsn
          s.Wal.s_stable s.Wal.s_pending s.Wal.s_next_txn;
        Fmt.str "appends %d  flushes %d  flushed_records %d  checkpoints %d"
          s.Wal.s_appends s.Wal.s_flushes s.Wal.s_flushed_records
          s.Wal.s_checkpoints;
        Fmt.str "commits %d  aborts %d" s.Wal.s_commits s.Wal.s_aborts;
      ]
  | _ -> None

let handle_connection server fd =
  let inp = Unix.in_channel_of_descr fd in
  let out = Unix.out_channel_of_descr fd in
  let session = Server.session server in
  let buf = Buffer.create 256 in
  let registry = (Server.catalog server).Sb_storage.Catalog.datatypes in
  let run_statement text =
    match Server.submit server session text with
    | Ok result ->
      send out (String.split_on_char '\n' (Corona.render_result ~registry result))
    | Error e -> send out [ "error: " ^ Err.to_string e ]
  in
  (try
     let quit = ref false in
     while not !quit do
       let line = input_line inp in
       let trimmed = String.trim line in
       if Buffer.length buf = 0 && trimmed = "\\quit" then quit := true
       else
         match if Buffer.length buf = 0 then meta server line else None with
         | Some lines -> send out lines
         | None ->
           Buffer.add_string buf line;
           Buffer.add_char buf '\n';
           if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
           then begin
             let text = Buffer.contents buf in
             Buffer.clear buf;
             if String.trim text <> ";" then run_statement text
             else send out []
           end
     done
   with End_of_file | Sys_error _ -> ());
  Server.close_session server session;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* wait (bounded) for in-flight statements to finish before exiting *)
let drain_inflight server =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait () =
    let st = Server.stats server in
    if st.Server.st_inflight > 0 && Unix.gettimeofday () < deadline then begin
      ignore (Unix.select [] [] [] 0.05);
      wait ()
    end
  in
  wait ()

let serve ~host ~port ~workers ~once ~wal_file =
  let config =
    match workers with
    | None -> Server.default_config ()
    | Some w ->
      {
        (Server.default_config ()) with
        Server.workers = w;
        max_inflight = 4 * w;
        degrade_inflight = 2 * w;
      }
  in
  let server = Server.create ~config () in
  (* durable log: load + recover on boot, save after every flush *)
  (match wal_file with
  | None -> ()
  | Some path ->
    let wal = Server.wal server in
    if Sys.file_exists path then begin
      let n = Wal.load_file wal path in
      if n > 0 then begin
        let st = Server.recover server in
        Fmt.pr
          "recovered from %s: %d records (%d truncated), %d committed txns, %d \
           redone, %d ddl@."
          path n st.Sb_storage.Recovery.r_truncated
          st.Sb_storage.Recovery.r_winners st.Sb_storage.Recovery.r_redone
          st.Sb_storage.Recovery.r_ddl
      end
    end;
    Wal.set_sink wal (Some (fun () -> Wal.save_file wal path)));
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  Fmt.pr "starburst-server listening on %s:%d (%d workers)@." host actual_port
    config.Server.workers;
  if once then begin
    (* single-connection mode, used by tests and scripted clients *)
    let fd, _ = Unix.accept sock in
    handle_connection server fd;
    Unix.close sock;
    Server.flush_wal server;
    Server.shutdown server
  end
  else begin
    (* graceful shutdown: SIGINT/SIGTERM stop the accept loop; in-flight
       statements drain, the log is forced, and we exit 0 *)
    let stop = ref false in
    let request_stop _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    while not !stop do
      match Unix.select [ sock ] [] [] 0.2 with
      | [ _ ], _, _ ->
        let fd, _ = Unix.accept sock in
        ignore (Thread.create (fun () -> handle_connection server fd) ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Fmt.pr "shutting down: draining in-flight statements@.";
    Unix.close sock;
    drain_inflight server;
    Server.flush_wal server;
    (match wal_file with
    | Some path -> Wal.save_file (Server.wal server) path
    | None -> ());
    Server.shutdown server;
    Fmt.pr "bye@."
  end

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Address to bind.")

let port =
  Arg.(value & opt int 5447 & info [ "port"; "p" ] ~doc:"TCP port (0 = ephemeral).")

let workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers"; "w" ] ~doc:"Worker-pool domains (default: sized from cores).")

let once =
  Arg.(
    value & flag
    & info [ "once" ] ~doc:"Serve a single connection, then exit (for tests).")

let wal_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-file" ]
        ~doc:
          "Persist the write-ahead log to $(docv): load and recover on boot, \
           save after every flush."
        ~docv:"FILE")

let cmd =
  let doc = "line-protocol TCP front end for Starburst" in
  Cmd.v
    (Cmd.info "starburst-server" ~doc)
    Term.(
      const (fun host port workers once wal_file ->
          serve ~host ~port ~workers ~once ~wal_file)
      $ host $ port $ workers $ once $ wal_file)

let () = exit (Cmd.eval cmd)
