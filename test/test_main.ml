let () =
  (* STARBURST_LOCKCHECK=1 runs the whole suite with the lock-discipline
     checker armed (the CI races job does) *)
  Sb_conc.Discipline.arm_from_env ();
  Alcotest.run "starburst"
    [
      Test_storage.suite;
      Test_hydrogen.suite;
      Test_qgm.suite;
      Test_rewrite.suite;
      Test_optimizer.suite;
      Test_qes.suite;
      Test_batch.suite;
      Test_integration.suite;
      Test_integration2.suite;
      Test_extensions.suite;
      Test_features.suite;
      Test_props.suite;
      Test_obs.suite;
      Test_verify.suite;
      Test_resil.suite;
      Test_analysis.suite;
      Test_fuzz.suite;
      Test_server.suite;
      Test_ruledsl.suite;
      Test_conc.suite;
    ]
