(** Server tests: the sharded LRU plan cache (key normalization,
    eviction, epoch invalidation, exported counters) and the
    multi-session front end — concurrent sessions checked against a
    single-caller oracle, SET and host-variable isolation across
    sessions sharing one cache, DDL/ANALYZE epoch invalidation under
    concurrency, and the admission controller's reject, session-cap and
    load-shed paths (made deterministic with a latch function and
    seeded [Sb_resil.Faults]). *)

open Test_util
module Server = Sb_server
module Lock = Sb_conc.Lock
module Err = Sb_resil.Err
module Faults = Sb_resil.Faults
module Plan_cache = Starburst.Plan_cache
module Functions = Sb_hydrogen.Functions
module Catalog = Sb_storage.Catalog
module Datatype = Sb_storage.Datatype
module Value = Sb_storage.Value

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- plan cache --------------------------------------------------- *)

let test_normalize () =
  let n = Plan_cache.normalize in
  Alcotest.(check string)
    "whitespace collapsed, lowercased, trailing ; dropped" "select x from t"
    (n "  SELECT   x\n\tFROM  T ;");
  Alcotest.(check string) "string literals keep their case"
    "select 'AbC' from t" (n "SELECT 'AbC' FROM t");
  Alcotest.(check bool) "equivalent spellings share one key" true
    (n "SELECT partno FROM t" = n "select  partno\nfrom T;");
  Alcotest.(check bool) "different literals stay distinct" true
    (n "SELECT 'a' FROM t" <> n "SELECT 'A' FROM t")

let test_lru_eviction () =
  let c : int Plan_cache.t = Plan_cache.create ~shards:1 ~capacity:2 () in
  Plan_cache.add c ~epoch:0 "a" 1;
  Plan_cache.add c ~epoch:0 "b" 2;
  ignore (Plan_cache.find c ~epoch:0 "a");
  (* [a] is now most recently used, so inserting a third key evicts [b] *)
  Plan_cache.add c ~epoch:0 "c" 3;
  let st = Plan_cache.stats c in
  Alcotest.(check int) "resident stays at capacity" 2 st.Plan_cache.resident;
  Alcotest.(check int) "one eviction" 1 st.Plan_cache.evictions;
  Alcotest.(check bool) "recently used key survives" true
    (Plan_cache.find c ~epoch:0 "a" = Some 1);
  Alcotest.(check bool) "LRU key evicted" true
    (Plan_cache.find c ~epoch:0 "b" = None);
  Alcotest.(check bool) "new key resident" true
    (Plan_cache.find c ~epoch:0 "c" = Some 3)

let test_epoch_invalidation () =
  let c : int Plan_cache.t = Plan_cache.create ~shards:2 ~capacity:8 () in
  Plan_cache.add c ~epoch:0 "k" 1;
  Alcotest.(check bool) "hit at its compile epoch" true
    (Plan_cache.find c ~epoch:0 "k" = Some 1);
  Alcotest.(check bool) "stale epoch misses" true
    (Plan_cache.find c ~epoch:1 "k" = None);
  let st = Plan_cache.stats c in
  Alcotest.(check int) "invalidation counted" 1 st.Plan_cache.invalidations;
  Alcotest.(check int) "stale entry dropped" 0 st.Plan_cache.resident;
  Plan_cache.add c ~epoch:1 "k" 2;
  Alcotest.(check bool) "recompiled entry hits at the new epoch" true
    (Plan_cache.find c ~epoch:1 "k" = Some 2)

let test_cache_metrics () =
  let m = Sb_obs.Metrics.create () in
  let c : int Plan_cache.t =
    Plan_cache.create ~shards:1 ~capacity:1 ~metrics:m ()
  in
  ignore (Plan_cache.find c ~epoch:0 "k");
  Plan_cache.add c ~epoch:0 "k" 1;
  ignore (Plan_cache.find c ~epoch:0 "k");
  ignore (Plan_cache.find c ~epoch:1 "k");
  Plan_cache.add c ~epoch:1 "k" 1;
  Plan_cache.add c ~epoch:1 "other" 2 (* capacity 1: evicts [k] *);
  let dump = Sb_obs.Metrics.dump m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle dump))
    [
      "sb_plan_cache_hits_total";
      "sb_plan_cache_misses_total";
      "sb_plan_cache_invalidations_total";
      "sb_plan_cache_evictions_total";
    ]

(* --- server fixtures ---------------------------------------------- *)

let schema =
  [
    "CREATE TABLE quotations (partno INT NOT NULL, price FLOAT, order_qty \
     INT, supplier STRING)";
    "CREATE TABLE inventory (partno INT NOT NULL UNIQUE, onhand_qty INT, \
     type STRING)";
    "INSERT INTO quotations VALUES (1, 10.5, 100, 'acme'), (2, 20.0, 5, \
     'acme'), (3, 7.25, 50, 'globex'), (4, 99.0, 2, 'initech'), (1, 11.0, \
     30, 'globex')";
    "INSERT INTO inventory VALUES (1, 20, 'CPU'), (2, 500, 'CPU'), (3, 10, \
     'DISK'), (4, 1, 'CPU')";
    "ANALYZE";
  ]

let mix =
  [|
    "SELECT partno FROM quotations WHERE price < 15";
    "SELECT i.type, count(*) FROM quotations q, inventory i WHERE q.partno \
     = i.partno GROUP BY i.type";
    "SELECT DISTINCT supplier FROM quotations WHERE order_qty > 10";
    "SELECT partno FROM inventory WHERE type = 'CPU' ORDER BY partno";
    "SELECT count(*) FROM quotations WHERE partno IN (SELECT partno FROM \
     inventory WHERE onhand_qty > 15)";
  |]

let ok_exn = function
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected error: %s" (Err.to_string e)

let rows_exn outcome =
  match ok_exn outcome with
  | Starburst.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected a row-returning statement"

let fresh_server ?config ?install () =
  let server = Server.create ?config ?install () in
  let boot = Server.session server in
  List.iter
    (fun stmt -> ignore (ok_exn (Server.submit server boot stmt)))
    schema;
  Server.close_session server boot;
  server

(* the single-caller oracle: one plain handle, same schema and data *)
let oracle () =
  let db = Starburst.create () in
  List.iter (fun stmt -> ignore (Starburst.run db stmt)) schema;
  db

(* --- sessions vs the single caller -------------------------------- *)

let test_sessions_match_single_caller () =
  let server = fresh_server () in
  let odb = oracle () in
  let s1 = Server.session server and s2 = Server.session server in
  Array.iter
    (fun qtext ->
      let expect = Starburst.query odb qtext in
      List.iter
        (fun s -> check_bag qtext expect (rows_exn (Server.submit server s qtext)))
        [ s1; s2 ])
    mix;
  (* a second pass is all cache hits and still correct *)
  let before = (Server.cache_stats server).Plan_cache.hits in
  Array.iter
    (fun qtext ->
      check_bag qtext (Starburst.query odb qtext)
        (rows_exn (Server.submit server s1 qtext)))
    mix;
  Alcotest.(check bool) "second pass hit the shared cache" true
    ((Server.cache_stats server).Plan_cache.hits >= before + Array.length mix);
  Server.shutdown server

let test_concurrent_domains_match () =
  let server = fresh_server () in
  let adm0 = (Server.stats server).Server.st_admitted in
  let odb = oracle () in
  let expected = Array.map (fun qtext -> Starburst.query odb qtext) mix in
  let rounds = 25 in
  let worker i () =
    let s = Server.session server in
    let bad = ref 0 in
    for k = 0 to rounds - 1 do
      let qi = (i + k) mod Array.length mix in
      match Server.submit server s mix.(qi) with
      | Ok (Starburst.Rows { rows; _ }) when same_bag expected.(qi) rows -> ()
      | _ -> incr bad
    done;
    Server.close_session server s;
    !bad
  in
  let domains = Array.init 4 (fun i -> Domain.spawn (worker i)) in
  let bad = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  Alcotest.(check int) "every concurrent result matches the single caller" 0
    bad;
  let st = Server.stats server in
  Alcotest.(check int) "all statements admitted" (4 * rounds)
    (st.Server.st_admitted - adm0);
  let c = Server.cache_stats server in
  Alcotest.(check bool) "the shared cache amortized compilation" true
    (c.Plan_cache.hits > c.Plan_cache.misses);
  Server.shutdown server

(* --- per-session state --------------------------------------------- *)

let test_set_isolation () =
  let server = fresh_server () in
  let s1 = Server.session server and s2 = Server.session server in
  ignore (ok_exn (Server.submit server s1 "SET limit_output_rows = 1"));
  (match Server.submit server s1 "SELECT partno FROM quotations" with
  | Error e ->
    Alcotest.(check string) "breach is a resource error" "resource"
      (Err.stage_name e.Err.err_stage)
  | Ok _ -> Alcotest.fail "session 1 should breach its output-row limit");
  (* the other session shares the cached plan but not the governor *)
  Alcotest.(check int) "session 2 is unlimited" 5
    (List.length (rows_exn (Server.submit server s2 "SELECT partno FROM quotations")));
  Server.shutdown server

let test_host_var_isolation () =
  let server = fresh_server () in
  let s1 = Server.session server and s2 = Server.session server in
  Starburst.bind_host (Server.session_db s1) "lim" (f 15.0);
  Starburst.bind_host (Server.session_db s2) "lim" (f 8.0);
  let qtext = "SELECT partno FROM quotations WHERE price < :lim" in
  check_bag "session 1 binding"
    [ row [ i 1 ]; row [ i 1 ]; row [ i 3 ] ]
    (rows_exn (Server.submit server s1 qtext));
  check_bag "session 2 shares the plan, not the binding" [ row [ i 3 ] ]
    (rows_exn (Server.submit server s2 qtext));
  Alcotest.(check bool) "the second execution was a cache hit" true
    ((Server.cache_stats server).Plan_cache.hits >= 1);
  Server.shutdown server

(* --- epoch invalidation -------------------------------------------- *)

let test_ddl_invalidates () =
  let server = fresh_server () in
  let s1 = Server.session server and s2 = Server.session server in
  let qtext = "SELECT partno FROM parts" in
  ignore (ok_exn (Server.submit server s1 "CREATE TABLE parts (partno INT)"));
  ignore (ok_exn (Server.submit server s1 "INSERT INTO parts VALUES (1), (2)"));
  check_bag "initial" [ row [ i 1 ]; row [ i 2 ] ]
    (rows_exn (Server.submit server s1 qtext));
  check_bag "cached" [ row [ i 1 ]; row [ i 2 ] ]
    (rows_exn (Server.submit server s1 qtext));
  let inv0 = (Server.cache_stats server).Plan_cache.invalidations in
  ignore (ok_exn (Server.submit server s2 "DROP TABLE parts"));
  ignore (ok_exn (Server.submit server s2 "CREATE TABLE parts (partno INT)"));
  ignore (ok_exn (Server.submit server s2 "INSERT INTO parts VALUES (7)"));
  check_bag "no stale plan served after drop/recreate" [ row [ i 7 ] ]
    (rows_exn (Server.submit server s1 qtext));
  Alcotest.(check bool) "invalidation counted" true
    ((Server.cache_stats server).Plan_cache.invalidations > inv0);
  let e0 = (Server.stats server).Server.st_epoch in
  ignore (ok_exn (Server.submit server s2 "ANALYZE"));
  Alcotest.(check bool) "ANALYZE bumps the statistics epoch" true
    ((Server.stats server).Server.st_epoch > e0);
  Server.shutdown server

let test_concurrent_invalidation () =
  let server = fresh_server () in
  let s = Server.session server in
  ignore (ok_exn (Server.submit server s "CREATE TABLE kv (k INT)"));
  let qtext = "SELECT count(*) FROM kv" in
  let stop = Atomic.make false in
  (* readers hammer the cached count while the writer interleaves
     inserts with single-table ANALYZE (each bumps the epoch); rows only
     ever get added, so any non-monotone count is a stale plan *)
  let reader () =
    let rs = Server.session server in
    let bad = ref 0 and last = ref 0 in
    while not (Atomic.get stop) do
      match Server.submit server rs qtext with
      | Ok (Starburst.Rows { rows = [ [| Value.Int n |] ]; _ }) ->
        if n < !last then incr bad;
        last := n
      | _ -> incr bad
    done;
    Server.close_session server rs;
    !bad
  in
  let readers = Array.init 2 (fun _ -> Domain.spawn reader) in
  for k = 1 to 20 do
    ignore
      (ok_exn
         (Server.submit server s (Printf.sprintf "INSERT INTO kv VALUES (%d)" k)));
    ignore (ok_exn (Server.submit server s "ANALYZE kv"))
  done;
  Atomic.set stop true;
  let bad = Array.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  Alcotest.(check int) "readers only saw fresh, monotone counts" 0 bad;
  (match rows_exn (Server.submit server s qtext) with
  | [ [| Value.Int n |] ] -> Alcotest.(check int) "final count" 20 n
  | _ -> Alcotest.fail "expected one count row");
  Server.shutdown server

(* --- admission control --------------------------------------------- *)

(* a scalar function that parks the executing statement on a latch, so
   the test can observe the server with a statement genuinely in
   flight *)
let test_admission_rejects_at_high_water () =
  (* level 95: the latch is taken from inside statement evaluation,
     below every product lock in the hierarchy *)
  let gate = Lock.create ~name:"test.gate" ~level:95 in
  let turn = Lock.Cond.create () in
  let entered = ref false and released = ref false in
  let latch_fn =
    {
      Functions.sf_name = "latch";
      sf_arity = Some 1;
      sf_type = (fun _ -> Ok (Some Datatype.Int));
      sf_eval =
        (fun args ->
          Lock.with_lock gate (fun () ->
              entered := true;
              Lock.Cond.broadcast turn;
              while not !released do
                Lock.Cond.wait turn gate
              done);
          List.hd args);
    }
  in
  let config =
    {
      (Server.default_config ()) with
      Server.workers = 1;
      max_inflight = 1;
      degrade_inflight = 1;
      session_inflight = 2;
    }
  in
  let server =
    Server.create ~config
      ~install:(fun db ->
        Functions.register_scalar db.Starburst.Corona.functions latch_fn)
      ()
  in
  let boot = Server.session server in
  ignore (ok_exn (Server.submit server boot "CREATE TABLE one (x INT)"));
  ignore (ok_exn (Server.submit server boot "INSERT INTO one VALUES (1)"));
  let s1 = Server.session server and s2 = Server.session server in
  let p = Server.submit_async server s1 "SELECT latch(x) FROM one" in
  Lock.with_lock gate (fun () ->
      while not !entered do
        Lock.Cond.wait turn gate
      done);
  (* one statement is parked in flight: the next must bounce *)
  (match Server.submit server s2 "SELECT x FROM one" with
  | Error e ->
    Alcotest.(check bool) "rejection is retryable" true e.Err.err_retryable;
    Alcotest.(check string) "rejection is a resource error" "resource"
      (Err.stage_name e.Err.err_stage)
  | Ok _ -> Alcotest.fail "expected a rejection at the high-water mark");
  Lock.with_lock gate (fun () ->
      released := true;
      Lock.Cond.broadcast turn);
  Alcotest.(check int) "the parked statement completes" 1
    (List.length (rows_exn (Server.await p)));
  (* capacity freed: the bounced statement is admitted on retry *)
  Alcotest.(check int) "re-admitted after the flight drains" 1
    (List.length (rows_exn (Server.submit server s2 "SELECT x FROM one")));
  Alcotest.(check bool) "rejection counted" true
    ((Server.stats server).Server.st_rejected >= 1);
  Server.shutdown server

let test_session_cap () =
  let config =
    {
      (Server.default_config ()) with
      Server.workers = 0;
      max_inflight = 8;
      degrade_inflight = 8;
      session_inflight = 0;
    }
  in
  let server = Server.create ~config () in
  let s = Server.session server in
  (match Server.submit server s "SELECT partno FROM quotations" with
  | Error e ->
    Alcotest.(check bool) "session-cap rejection is retryable" true
      e.Err.err_retryable
  | Ok _ -> Alcotest.fail "a zero session cap must reject");
  Server.shutdown server

let test_load_shedding () =
  let config =
    {
      (Server.default_config ()) with
      Server.workers = 0;
      max_inflight = 8;
      degrade_inflight = 0;
      session_inflight = 4;
    }
  in
  let server = Server.create ~config () in
  let s = Server.session server in
  ignore (ok_exn (Server.submit server s "CREATE TABLE t (x INT)"));
  ignore (ok_exn (Server.submit server s "INSERT INTO t VALUES (1), (2), (3)"));
  check_bag "a shed (greedy, no-rewrite) plan still answers correctly"
    [ row [ i 2 ]; row [ i 3 ] ]
    (rows_exn (Server.submit server s "SELECT x FROM t WHERE x > 1"));
  Alcotest.(check bool) "statements past the threshold were shed" true
    ((Server.stats server).Server.st_shed >= 3);
  Alcotest.(check bool) "shedding is exported as a metric" true
    (contains "sb_server_shed_total"
       (Sb_obs.Metrics.dump (Server.metrics server)));
  Server.shutdown server

(* --- faults and lifecycle ------------------------------------------ *)

let test_injected_fault_surfaces_structured () =
  let server = fresh_server () in
  let s = Server.session server in
  let faults = Faults.create ~seed:11 () in
  Faults.fail_nth faults ~outcome:Faults.Permanent ~site:"catalog.lookup" [ 1 ];
  Catalog.set_faults (Server.catalog server) faults;
  (match Server.submit server s "SELECT partno FROM inventory" with
  | Error e ->
    Alcotest.(check string) "injected fault surfaces as a storage error"
      "storage"
      (Err.stage_name e.Err.err_stage)
  | Ok _ -> Alcotest.fail "expected the injected fault to surface");
  Alcotest.(check int) "the session survives the fault" 4
    (List.length (rows_exn (Server.submit server s "SELECT partno FROM inventory")));
  Server.shutdown server

let test_session_lifecycle () =
  let server = fresh_server () in
  let s1 = Server.session server and s2 = Server.session server in
  Alcotest.(check int) "two open sessions" 2
    (List.length (Server.list_sessions server));
  Alcotest.(check bool) "ids are distinct" true
    (Server.session_id s1 <> Server.session_id s2);
  Server.close_session server s1;
  Alcotest.(check int) "one session left" 1
    (List.length (Server.list_sessions server));
  (match Server.submit server s1 "SELECT partno FROM inventory" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a closed session must not execute");
  Server.shutdown server;
  (match Server.submit server s2 "SELECT partno FROM inventory" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a shut-down server must not execute");
  match Server.session server with
  | exception _ -> ()
  | _ -> Alcotest.fail "a shut-down server must not open sessions"

let suite =
  ( "server",
    [
      case "plan cache: key normalization" test_normalize;
      case "plan cache: LRU eviction" test_lru_eviction;
      case "plan cache: epoch invalidation" test_epoch_invalidation;
      case "plan cache: exported counters" test_cache_metrics;
      case "sessions match the single caller" test_sessions_match_single_caller;
      case "concurrent domains match the single caller"
        test_concurrent_domains_match;
      case "SET variables are session-isolated" test_set_isolation;
      case "host variables are session-isolated, plans shared"
        test_host_var_isolation;
      case "DDL invalidates cached plans across sessions" test_ddl_invalidates;
      case "no stale plans under concurrent DDL/ANALYZE"
        test_concurrent_invalidation;
      case "admission rejects at the high-water mark"
        test_admission_rejects_at_high_water;
      case "per-session concurrency cap" test_session_cap;
      case "load shedding degrades, still answers" test_load_shedding;
      case "injected faults surface as structured errors"
        test_injected_fault_surfaces_structured;
      case "session lifecycle and shutdown" test_session_lifecycle;
    ] )
