(** Shared helpers for the test suites. *)

open Sb_storage

let value_testable : Value.t Alcotest.testable =
  Alcotest.testable (fun ppf v -> Value.pp ppf v) (fun a b -> Value.compare a b = 0)

let tuple_testable : Tuple.t Alcotest.testable =
  Alcotest.testable Tuple.pp (fun a b -> Tuple.compare a b = 0)

(** Bag (multiset) equality of result sets, order-insensitive. *)
let same_bag (a : Tuple.t list) (b : Tuple.t list) =
  let sort = List.sort Tuple.compare in
  List.equal (fun x y -> Tuple.compare x y = 0) (sort a) (sort b)

let check_bag msg expected actual =
  if not (same_bag expected actual) then
    Alcotest.failf "%s:\nexpected %s\nactual   %s" msg
      (String.concat " " (List.map Tuple.to_string (List.sort Tuple.compare expected)))
      (String.concat " " (List.map Tuple.to_string (List.sort Tuple.compare actual)))

let check_rows msg expected actual =
  Alcotest.(check (list tuple_testable)) msg expected actual

(* row constructors *)
let i x = Value.Int x
let f x = Value.Float x
let s x = Value.String x
let b x = Value.Bool x
let nul = Value.Null
let row l : Tuple.t = Array.of_list l

(** A database pre-loaded with the standard test schema and data. *)
let sample_db ?(extensions = false) () =
  let db = Starburst.create () in
  if extensions then begin
    Sb_extensions.Outer_join.install db;
    Sb_extensions.Spatial.install db;
    Sb_extensions.Sampling.install db;
    Sb_extensions.Majority.install db;
    Sb_extensions.Stats_fns.install db
  end;
  let ddl =
    [
      "CREATE TABLE quotations (partno INT NOT NULL, price FLOAT, order_qty INT, supplier STRING)";
      "CREATE TABLE inventory (partno INT NOT NULL UNIQUE, onhand_qty INT, type STRING)";
      "CREATE TABLE dept (id INT NOT NULL UNIQUE, dname STRING, region STRING)";
      "CREATE TABLE emp (eid INT, dept INT, salary FLOAT)";
      "CREATE TABLE edges (src INT, dst INT)";
      "INSERT INTO quotations VALUES (1, 10.5, 100, 'acme'), (2, 20.0, 5, 'acme'), \
       (3, 7.25, 50, 'globex'), (4, 99.0, 2, 'initech'), (1, 11.0, 30, 'globex')";
      "INSERT INTO inventory VALUES (1, 20, 'CPU'), (2, 500, 'CPU'), (3, 10, 'DISK'), (4, 1, 'CPU')";
      "INSERT INTO dept VALUES (1,'eng','west'),(2,'sales','east'),(3,'legal','west'),(4,'empty','east')";
      "INSERT INTO emp VALUES (10,1,100.0),(11,1,120.0),(12,2,90.0),(13,1,95.0),(14,3,150.0)";
      "INSERT INTO edges VALUES (1,2),(2,3),(3,4),(5,6)";
      "ANALYZE";
    ]
  in
  List.iter (fun stmt -> ignore (Starburst.run db stmt)) ddl;
  db

let q db text = Starburst.query db text

(** Expects a query to raise any Starburst-stack error. *)
let expect_error db text =
  match Starburst.run db text with
  | _ -> Alcotest.failf "expected an error for: %s" text
  | exception
      ( Starburst.Error _ | Sb_qgm.Builder.Semantic_error _
      | Sb_hydrogen.Parser.Parse_error _ | Sb_hydrogen.Lexer.Lex_error _
      | Sb_optimizer.Generator.Unsupported _
      | Sb_hydrogen.Functions.Function_error _ ) ->
    ()

let case name fn = Alcotest.test_case name `Quick fn
