(** Tests for the declarative rewrite-rule DSL: the registration-time
    static verifier (sound rules verify, unsound fixtures are rejected
    naming the failed obligation), byte-identical behavior of the
    ported built-in families against their native originals, and the
    registration/report surface through Corona. *)

open Sb_storage
module Qgm = Sb_qgm.Qgm
module Print = Sb_qgm.Print
module Builder = Sb_qgm.Builder
module Check = Sb_qgm.Check
module Rule = Sb_rewrite.Rule
module Engine = Sb_rewrite.Engine
module Base_rules = Sb_rewrite.Base_rules
module Dsl = Sb_ruledsl.Dsl
module Verify = Sb_ruledsl.Verify
module Compile = Sb_ruledsl.Compile
module Builtin = Sb_ruledsl.Builtin
open Test_util

let setup () =
  let cat = Catalog.create () in
  let mk name schema = ignore (Catalog.create_table cat ~name ~schema ()) in
  mk "quotations"
    [| Schema.column ~nullable:false "partno" Datatype.Int;
       Schema.column "price" Datatype.Float;
       Schema.column "order_qty" Datatype.Int |];
  mk "inventory"
    [| Schema.column ~nullable:false ~unique:true "partno" Datatype.Int;
       Schema.column "onhand_qty" Datatype.Int;
       Schema.column "type" Datatype.String |];
  mk "parts"
    [| Schema.column "partno" Datatype.Int;
       Schema.column "descr" Datatype.String |];
  let cfg =
    Builder.make_config ~catalog:cat ~functions:(Sb_hydrogen.Functions.create ())
  in
  (cat, cfg)

let status_testable : Verify.status Alcotest.testable =
  Alcotest.testable
    (fun ppf s -> Fmt.string ppf (Verify.status_to_string s))
    (fun a b -> a = b)

let status_of r = (Verify.verify r).Verify.v_status

let rejected_with obl r =
  match status_of r with
  | Verify.Rejected { obligation; _ } -> obligation = obl
  | _ -> false

(* --- built-in ports: expected classifications --- *)

let test_builtin_statuses () =
  let expect name st =
    let r = List.find (fun (r : Dsl.rule) -> r.Dsl.name = name) Builtin.all in
    Alcotest.check status_testable name st (status_of r)
  in
  expect "push_into_select" Verify.Verified;
  expect "push_through_group_by" Verify.Verified;
  expect "push_through_set_op" Verify.Verified;
  expect "replicate_restriction" Verify.Verified;
  expect "drop_true_predicate" Verify.Verified;
  (* written without its uniqueness / NOT NULL checks: the verifier
     derives them and guards the rule *)
  expect "eliminate_redundant_join"
    (Verify.Conditional [ Verify.O_key; Verify.O_strict ])

let test_builtin_guards_inserted () =
  let r =
    List.find
      (fun (r : Dsl.rule) -> r.Dsl.name = "eliminate_redundant_join")
      Builtin.all
  in
  let v = Verify.verify r in
  Alcotest.(check bool)
    "unique guard then not-null guard" true
    (v.Verify.v_guards
    = [ Dsl.Guard_unique { quant = "qk"; col = "i" };
        Dsl.Guard_not_null { quant = "qk"; col = "i" } ])

(* --- fixture table: deliberately unsound rules must be Rejected with
       the failed obligation named; guardable ones become Conditional;
       sound variants must verify --- *)

let base ?(name = "fixture") ?(cls = "fixture") pattern actions =
  { Dsl.name; rule_class = cls; priority = 10; pattern; actions }

let push_pattern ?(target_kind = []) ?(shape = []) ?(sole = true)
    ?(ftype = true) ?(single = true) ?(movable = true) () =
  let open Dsl in
  [ Box_kind K_select; Each_pred "p" ]
  @ (if movable then [ Movable "p" ] else [])
  @ shape
  @ (if sole then [ Sole_quant_ref { pred = "p"; quant = "q" } ] else [])
  @ (if ftype then [ Quant_type_f "q" ] else [])
  @ [ Input_box { quant = "q"; box = "l" } ]
  @ target_kind
  @ (if single then [ Single_user "l" ] else [])
  @ [ Inline { pred = "p"; quant = "q"; out = "e" } ]

let push_actions =
  [ Dsl.Remove_pred "p"; Dsl.Add_pred_to { box = "l"; expr = "e" } ]

let test_unsound_fixtures () =
  let open Dsl in
  let open Verify in
  let cases =
    [
      (* scope: action uses an unbound metavariable *)
      ( "unbound action var", O_scope,
        base [ Each_pred "p" ] [ Remove_pred "x" ] );
      (* scope: a pred metavariable used where a quant is needed *)
      ( "sort mismatch", O_scope,
        base
          [ Each_pred "p"; Sole_quant_ref { pred = "p"; quant = "q" } ]
          [ Remove_quant "p" ] );
      (* scope: rebinding *)
      ( "double binding", O_scope,
        base [ Each_pred "p"; Each_pred "p" ] [ Remove_pred "p" ] );
      (* dropped correlation guard: a two-quantifier predicate pushed
         below one of them — the PR 5 bug class *)
      ( "dropped correlation guard", O_correlation,
        base
          [ Box_kind K_select;
            Each_eq_col_pred
              { pred = "p"; keep = "qk"; drop = "qd"; col = "i" };
            Movable "p";
            Quant_type_f "qk";
            Input_box { quant = "qk"; box = "l" };
            Plain_select "l";
            Single_user "l";
            Inline { pred = "p"; quant = "qk"; out = "e" } ]
          push_actions );
      (* quantifier multiplicity: push through a possibly-existential
         quantifier *)
      ( "missing F-type check", O_quant_type,
        base
          (push_pattern ~ftype:false ~target_kind:[ Plain_select "l" ] ())
          push_actions );
      (* movability: the predicate may consume a subquery *)
      ( "missing movable check", O_correlation,
        base
          (push_pattern ~movable:false ~target_kind:[ Plain_select "l" ] ())
          push_actions );
      (* boundary: no atom says the target absorbs predicates *)
      ( "no target boundary", O_boundary,
        base (push_pattern ()) push_actions );
      (* boundary: GROUP BY target without the pass-through-keys check *)
      ( "group-by without passthrough", O_boundary,
        base
          (push_pattern ~target_kind:[ Kind_is ("l", K_group_by) ] ())
          push_actions );
      (* non-strict null handling: IS NULL pushed below a NULL-padding
         extension operation *)
      ( "IS NULL below NULL padding", O_strict,
        base
          (push_pattern
             ~shape:[ Pred_matches ("p", E_is_null) ]
             ~target_kind:[ Kind_is ("l", K_ext) ] ())
          push_actions );
      (* duplicate-count change: quantifier removed with no redirect *)
      ( "remove-quant without redirect", O_key,
        base
          [ Box_kind K_select;
            Each_eq_col_pred
              { pred = "p"; keep = "qk"; drop = "qd"; col = "i" };
            Both_quants_here ("qk", "qd");
            Same_input ("qk", "qd") ]
          [ Remove_quant "qd" ] );
      (* redundant join without the same-input witness *)
      ( "redirect without same-input", O_key,
        base
          [ Box_kind K_select;
            Each_eq_col_pred
              { pred = "p"; keep = "qk"; drop = "qd"; col = "i" };
            Both_quants_here ("qk", "qd") ]
          [ Remove_pred "p";
            Redirect_refs { drop = "qd"; keep = "qk" };
            Drop_reflexive_eqs;
            Remove_quant "qd" ] );
      (* redundant join without the F-quantifier witness *)
      ( "redirect without both-quants-here", O_quant_type,
        base
          [ Box_kind K_select;
            Each_eq_col_pred
              { pred = "p"; keep = "qk"; drop = "qd"; col = "i" };
            Same_input ("qk", "qd") ]
          [ Remove_pred "p";
            Redirect_refs { drop = "qd"; keep = "qk" };
            Drop_reflexive_eqs;
            Remove_quant "qd" ] );
      (* unjustified removal: IS NULL is not provably TRUE *)
      ( "unjustified pred drop", O_always_true,
        base
          [ Each_pred "p"; Pred_matches ("p", E_is_null) ]
          [ Remove_pred "p" ] );
      ( "remove-matching IS NULL", O_always_true,
        base
          [ Each_pred "p"; Pred_matches ("p", E_is_null) ]
          [ Remove_preds_matching E_is_null ] );
      ( "remove-matching NULL literal", O_always_true,
        base
          [ Each_pred "p"; Pred_matches ("p", E_null_lit) ]
          [ Remove_preds_matching E_null_lit ] );
      (* termination: replica re-derivation ping-pong (the PR 5 bug) *)
      ( "replica without anti-ping-pong", O_termination,
        base
          [ Box_kind K_select;
            Each_eq_pair { left = "a"; right = "c" };
            Each_restriction { col = "x"; op = "o"; lit = "v" };
            Replica
              { left = "a"; right = "c"; col = "x"; op = "o"; lit = "v";
                out = "e" };
            Not_exists_here "e" ]
          [ Add_pred_here "e" ] );
      (* termination: set-op replication without the mark pair *)
      ( "setop replicate without mark", O_termination,
        base
          [ Box_kind K_select;
            Each_pred "p";
            Movable "p";
            Sole_quant_ref { pred = "p"; quant = "q" };
            Quant_type_f "q";
            Input_box { quant = "q"; box = "l" };
            Kind_is ("l", K_set_op);
            Single_user "l";
            Not_recursive "l" ]
          [ Replicate_into_arms { pred = "p"; quant = "q"; box = "l" } ] );
      (* termination: removal shape never matched by the pattern *)
      ( "remove-matching unwitnessed", O_termination,
        base [ Box_kind K_select ] [ Remove_preds_matching E_true ] );
      (* implication: adding a pred that is no replica of hypotheses *)
      ( "unimplied added pred", O_implied,
        base
          (push_pattern ~target_kind:[ Plain_select "l" ] ())
          [ Add_pred_here "e" ] );
      ( "no actions", O_termination, base [ Each_pred "p" ] [] );
    ]
  in
  List.iter
    (fun (name, obl, r) ->
      match status_of r with
      | Verify.Rejected { obligation; _ } ->
        Alcotest.(check string)
          name
          (Verify.obligation_to_string obl)
          (Verify.obligation_to_string obligation)
      | st ->
        Alcotest.failf "%s: expected Rejected(%s), got %s" name
          (Verify.obligation_to_string obl)
          (Verify.status_to_string st))
    cases

let test_guardable_fixtures () =
  let open Dsl in
  (* shared target: auto-guarded, not rejected *)
  Alcotest.check status_testable "missing single-user is guarded"
    (Verify.Conditional [ Verify.O_share ])
    (status_of
       (base
          (push_pattern ~single:false ~target_kind:[ Plain_select "l" ] ())
          push_actions));
  (* unconstrained predicate below NULL padding: runtime strictness guard *)
  (match
     status_of
       (base
          (push_pattern ~target_kind:[ Kind_is ("l", K_ext) ] ())
          push_actions)
   with
  | Verify.Conditional obls ->
    Alcotest.(check bool) "strict obligation" true (List.mem Verify.O_strict obls)
  | st ->
    Alcotest.failf "expected Conditional(strict), got %s"
      (Verify.status_to_string st));
  (* a provably strict shape discharges the same obligation statically *)
  Alcotest.check status_testable "strict comparison below NULL padding"
    Verify.Verified
    (status_of
       (base
          (push_pattern
             ~shape:[ Pred_matches ("p", E_cmp) ]
             ~target_kind:[ Kind_is ("l", K_ext) ] ())
          push_actions));
  (* an author-written guard discharges the obligation: no auto-guard *)
  Alcotest.check status_testable "explicit guard credits the author"
    Verify.Verified
    (status_of
       (base
          (push_pattern ~single:false
             ~target_kind:[ Plain_select "l"; Guard_single_user "l" ]
             ())
          push_actions))

(* --- byte-identical differential: ported families vs native --- *)

(** The default rule set with the predicate/redundant families replaced
    in place by their DSL-compiled ports (registration order kept). *)
let dsl_rules ~catalog =
  let compiled =
    List.map
      (fun (r : Dsl.rule) ->
        match Compile.compile ~catalog r with
        | Ok (cr, _) -> (cr.Rule.rule_name, cr)
        | Error st ->
          Alcotest.failf "builtin %s rejected: %s" r.Dsl.name
            (Verify.status_to_string st))
      Builtin.all
  in
  List.map
    (fun (r : Rule.t) ->
      match List.assoc_opt r.Rule.rule_name compiled with
      | Some d -> d
      | None -> r)
    (Rule.all (Base_rules.default_set ~catalog))

let differential_queries =
  [
    (* figure 2: subquery-to-join + merge + predicate push *)
    "SELECT partno, price, order_qty FROM quotations Q1 WHERE Q1.partno IN \
     (SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty \
     AND Q3.type = 'CPU')";
    (* push into a merged view / plain select *)
    "SELECT v.partno FROM (SELECT partno, price FROM quotations) v WHERE \
     v.price > 10";
    (* push through GROUP BY on a pass-through key *)
    "SELECT g.partno, g.n FROM (SELECT partno, count(*) AS n FROM \
     quotations GROUP BY partno) g WHERE g.partno = 3";
    (* push through a set operation, replicating *)
    "SELECT u.partno FROM (SELECT partno FROM quotations UNION ALL SELECT \
     partno FROM parts) u WHERE u.partno < 5";
    (* replicate a restriction across an equality *)
    "SELECT q.partno FROM quotations q, parts p WHERE q.partno = p.partno \
     AND q.partno > 2";
    (* redundant self-join on a unique NOT NULL key *)
    "SELECT a.partno, b.onhand_qty FROM inventory a, inventory b WHERE \
     a.partno = b.partno AND a.type = 'CPU'";
    (* redundant-join guard must block: parts.partno is not unique *)
    "SELECT a.partno, b.descr FROM parts a, parts b WHERE a.partno = \
     b.partno";
    (* TRUE-predicate drop *)
    "SELECT partno FROM quotations WHERE 1 = 1 AND price > 0";
    (* HAVING + grouped subquery *)
    "SELECT t.partno FROM (SELECT partno FROM inventory GROUP BY partno \
     HAVING count(*) > 0) t WHERE t.partno = 7";
  ]

let test_differential_byte_identical () =
  let cat, cfg = setup () in
  let native = Rule.all (Base_rules.default_set ~catalog:cat) in
  let dsl = dsl_rules ~catalog:cat in
  List.iter
    (fun query ->
      let g_native = Builder.build_text cfg query in
      let g_dsl = Builder.build_text cfg query in
      let s_native =
        Engine.run ~check_each:true ~rules:native g_native
      in
      let s_dsl = Engine.run ~check_each:true ~rules:dsl g_dsl in
      Alcotest.(check string)
        ("rewritten QGM identical: " ^ query)
        (Print.to_string g_native) (Print.to_string g_dsl);
      Alcotest.(check (list (pair string int)))
        ("firing counts identical: " ^ query)
        (List.sort compare s_native.Engine.firings)
        (List.sort compare s_dsl.Engine.firings);
      Alcotest.(check (list string))
        ("consistent: " ^ query) [] (Check.check g_dsl))
    differential_queries

let test_dsl_rules_fire () =
  (* the ported rules actually fire through the DSL matcher *)
  let cat, cfg = setup () in
  let dsl = dsl_rules ~catalog:cat in
  let fired query name =
    let g = Builder.build_text cfg query in
    let stats = Engine.run ~check_each:true ~rules:dsl g in
    List.mem_assoc name stats.Engine.firings
  in
  Alcotest.(check bool) "push_through_group_by" true
    (fired
       "SELECT t, total FROM (SELECT type AS t, sum(onhand_qty) AS total \
        FROM inventory GROUP BY type) v WHERE t = 'CPU'"
       "push_through_group_by");
  Alcotest.(check bool) "push_through_set_op" true
    (fired
       "SELECT * FROM ((SELECT partno FROM quotations) UNION ALL (SELECT \
        partno FROM inventory)) u WHERE partno > 2"
       "push_through_set_op");
  Alcotest.(check bool) "replicate_restriction" true
    (fired
       "SELECT q.partno FROM quotations q, parts p WHERE q.partno = \
        p.partno AND q.partno > 2"
       "replicate_restriction");
  Alcotest.(check bool) "eliminate_redundant_join" true
    (fired
       "SELECT a.partno, b.onhand_qty FROM inventory a, inventory b WHERE \
        a.partno = b.partno AND a.type = 'CPU'"
       "eliminate_redundant_join");
  Alcotest.(check bool) "redundant-join guard blocks non-unique key" false
    (fired
       "SELECT a.partno, b.descr FROM parts a, parts b WHERE a.partno = \
        b.partno"
       "eliminate_redundant_join")

(* --- the Corona surface: registration, EXPLAIN RULES, dead-rule --- *)

let contains hay sub =
  let ns = String.length sub in
  let rec go i =
    i + ns <= String.length hay && (String.sub hay i ns = sub || go (i + 1))
  in
  go 0

let test_corona_registration () =
  let db = Starburst.create () in
  (* a Rejected rule is refused with a structured semantic error naming
     the failed obligation, and never enters the rule set *)
  let bad =
    {
      Dsl.name = "bad_drop";
      rule_class = "predicate";
      priority = 1;
      pattern = [ Dsl.Each_pred "p" ];
      actions = [ Dsl.Remove_pred "p" ];
    }
  in
  (match Starburst.register_dsl_rule db bad with
  | _ -> Alcotest.fail "rejected rule must not register"
  | exception Starburst.Error e ->
    Alcotest.(check bool)
      "classified semantic" true
      (e.Sb_resil.Err.err_stage = Sb_resil.Err.Semantic);
    Alcotest.(check bool)
      "names the obligation" true
      (contains e.Sb_resil.Err.err_msg "always-true"));
  Alcotest.(check bool)
    "rejected rule absent from the set" false
    (List.exists
       (fun (r : Rule.t) -> r.Rule.rule_name = "bad_drop")
       (Rule.all db.Starburst.rules));
  (* a sound rule registers, Verified, with DSL origin *)
  let ok = { Builtin.drop_true_predicate with Dsl.name = "my_drop_true" } in
  Alcotest.check status_testable "verified on registration" Verify.Verified
    (Starburst.register_dsl_rule db ok);
  let reg =
    List.find
      (fun (r : Rule.t) -> r.Rule.rule_name = "my_drop_true")
      (Rule.all db.Starburst.rules)
  in
  Alcotest.(check bool) "dsl origin" true (reg.Rule.rule_origin = Rule.Dsl)

let test_corona_explain_rules () =
  let db = Starburst.create () in
  Starburst.use_dsl_builtins db;
  ignore
    (Starburst.run db
       "CREATE TABLE inventory (partno INT NOT NULL UNIQUE, onhand_qty INT, \
        type STRING)");
  ignore
    (Starburst.run db
       "SELECT a.partno FROM inventory a, inventory b WHERE a.partno = \
        b.partno");
  (* EXPLAIN RULES is a complete statement and round-trips *)
  Alcotest.(check string)
    "pretty round-trip" "EXPLAIN RULES"
    (Sb_hydrogen.Pretty.statement_to_string
       (Sb_hydrogen.Parser.statement "EXPLAIN RULES"));
  let report =
    match Starburst.run db "EXPLAIN RULES" with
    | Starburst.Message m -> m
    | _ -> Alcotest.fail "EXPLAIN RULES must return a report"
  in
  Alcotest.(check bool)
    "lists the conditional builtin" true
    (contains report "eliminate_redundant_join");
  Alcotest.(check bool)
    "shows its discharge state" true
    (contains report "Conditional(key,strict)");
  Alcotest.(check bool) "shows DSL origin" true (contains report "dsl");
  (* cumulative fire/attempt accounting backs the report *)
  let fires, attempts =
    List.assoc "eliminate_redundant_join" (Starburst.rule_stats db)
  in
  Alcotest.(check bool) "the join elimination fired" true (fires >= 1);
  Alcotest.(check bool) "attempts >= fires" true (attempts >= fires)

let test_dead_rule_lint () =
  let module Lint = Sb_verify.Lint in
  let diags =
    Lint.lint_rules
      [
        ("never_fires", (0, Lint.dead_rule_threshold));
        ("healthy", (3, 60));
        ("cold", (0, Lint.dead_rule_threshold - 1));
      ]
  in
  (match diags with
  | [ d ] ->
    Alcotest.(check string) "code" "dead-rule" d.Lint.d_code;
    Alcotest.(check bool)
      "locates the rule" true
      (d.Lint.d_loc = Lint.Rule "never_fires")
  | ds -> Alcotest.failf "expected exactly one diag, got %d" (List.length ds));
  (* and the report surfaces it *)
  let db = Starburst.create () in
  Hashtbl.replace db.Starburst.rule_stats "my_dead_rule" (0, 100);
  let report = Starburst.rules_report db in
  Alcotest.(check bool) "report flags it" true (contains report "dead-rule")

let suite =
  ( "ruledsl",
    [
      case "builtin statuses" test_builtin_statuses;
      case "auto-inserted guards" test_builtin_guards_inserted;
      case "unsound fixtures rejected" test_unsound_fixtures;
      case "guardable fixtures conditional" test_guardable_fixtures;
      case "DSL vs native byte-identical" test_differential_byte_identical;
      case "DSL rules fire" test_dsl_rules_fire;
      case "registration through Corona" test_corona_registration;
      case "EXPLAIN RULES report" test_corona_explain_rules;
      case "dead-rule lint" test_dead_rule_lint;
    ] )
