(** lib/fuzz tests: the checked-in repro corpus stays green, the harness
    is byte-for-byte deterministic, a deliberately broken rewrite rule
    is caught by the differential oracle and shrunk to a tiny repro, and
    a NULL-semantics fixture table agrees between the un-rewritten
    reference pipeline and fully optimized plans. *)

open Test_util
module Sprng = Sb_fuzz.Sprng
module Gen = Sb_fuzz.Gen
module Oracle = Sb_fuzz.Oracle
module Harness = Sb_fuzz.Harness
module Repro = Sb_fuzz.Repro
module Rule = Sb_rewrite.Rule
module Qgm = Sb_qgm.Qgm
module Rule_audit = Sb_verify.Rule_audit

(* --- checked-in repro corpus --------------------------------------- *)

(* Every file under fuzz_corpus/ is a shrunk repro of a discrepancy the
   fuzzer once found (and that has since been fixed): replaying them is
   the permanent regression suite for those bugs. *)
let test_corpus () =
  let dir = "fuzz_corpus" in
  let results = Harness.replay_dir dir in
  Alcotest.(check bool)
    "corpus is not empty" true
    (List.length results >= 5);
  List.iter
    (fun (path, verdict) ->
      match verdict with
      | Oracle.Pass -> ()
      | Oracle.Rejected msg -> Alcotest.failf "%s: rejected (%s)" path msg
      | Oracle.Fail { config; detail } ->
        Alcotest.failf "%s: regressed [%s] %s" path config detail)
    results

(* --- determinism ---------------------------------------------------- *)

let test_determinism () =
  let run () =
    let st = Harness.run ~seed:17 ~n:25 () in
    Harness.report st
  in
  let a = run () and b = run () in
  Alcotest.(check string) "two runs, identical reports" a b

(* the same root seed must also generate the same workload text *)
let test_generator_determinism () =
  let workload seed =
    let root = Sprng.create seed in
    let cat_rng = Sprng.split root in
    let q_rng = Sprng.split root in
    let cat = Gen.gen_catalog cat_rng in
    String.concat "\n" (Gen.ddl_of_catalog cat)
    ^ "\n"
    ^ Gen.query_text (Gen.gen_query q_rng cat)
  in
  Alcotest.(check string) "same seed, same workload" (workload 5) (workload 5);
  Alcotest.(check bool)
    "different seed, different workload" true
    (workload 5 <> workload 6)

(* --- a deliberately broken rule is caught and shrunk ---------------- *)

(* An unsound rule in the style of the guard bugs the fuzzer has caught
   in the wild: it silently drops one WHERE conjunct.  Injected into
   every non-reference configuration, the differential oracle must flag
   it, and the shrinker must cut the repro down to at most 3
   quantifiers. *)
let broken_rule =
  Rule.make ~priority:99 ~name:"test_broken_drop_pred" ~rule_class:"test"
    ~condition:(fun ctx ->
      ctx.Rule.box.Qgm.b_kind = Qgm.Select && ctx.Rule.box.Qgm.b_preds <> [])
    ~action:(fun ctx ->
      match ctx.Rule.box.Qgm.b_preds with
      | _ :: rest -> ctx.Rule.box.Qgm.b_preds <- rest
      | [] -> ())
    ()

let test_broken_rule_caught () =
  let inject db = Starburst.Extension.register_rewrite_rule db broken_rule in
  let st = Harness.run ~inject ~seed:11 ~n:20 () in
  Alcotest.(check bool)
    "at least one discrepancy" true
    (st.Harness.st_failures <> []);
  let counts =
    List.map
      (fun (r : Repro.t) ->
        Gen.quantifier_count (Sb_hydrogen.Parser.query_text r.Repro.r_query))
      st.Harness.st_failures
  in
  let smallest = List.fold_left min max_int counts in
  if smallest > 3 then
    Alcotest.failf "no repro shrank to <= 3 quantifiers (smallest: %d)"
      smallest

(* --- NULL semantics at the QES boundary ----------------------------- *)

(* Each fixture runs once through the un-rewritten reference pipeline
   (rewrite budget 0) and once through the full pipeline (rewrite +
   cost-based optimization); the result bags must agree.  The fixtures
   concentrate on three-valued logic: comparisons with NULL, IS [NOT]
   NULL, NOT IN over a NULL-containing list, outer-join padding,
   count-star vs count(col), GROUP BY and DISTINCT treating NULLs as
   one group, and CASE with a NULL arm. *)
let null_ddl =
  "CREATE TABLE nt (k INT NOT NULL, a INT, b STRING);\n\
   INSERT INTO nt VALUES (1, 10, 'x'), (2, NULL, 'y'), (3, 10, NULL), (4, \
   NULL, NULL), (5, 20, 'x');\n\
   CREATE TABLE nu (k INT NOT NULL, a INT);\n\
   INSERT INTO nu VALUES (1, 10), (2, NULL), (3, 30);\n\
   ANALYZE"

let null_fixtures =
  [
    "SELECT t.k FROM nt t WHERE t.a = 10";
    "SELECT t.k FROM nt t WHERE NOT (t.a = 10)";
    "SELECT t.k FROM nt t WHERE t.a IS NULL";
    "SELECT t.k FROM nt t WHERE t.a IS NOT NULL";
    "SELECT t.k FROM nt t WHERE t.a = NULL";
    "SELECT t.k FROM nt t WHERE t.a IN (10, NULL)";
    "SELECT t.k FROM nt t WHERE NOT (t.k IN (SELECT u.a FROM nu u))";
    "SELECT t.k FROM nt t WHERE t.a < 15 OR t.b = 'y'";
    "SELECT count(*) FROM nt t";
    "SELECT count(t.a) FROM nt t";
    "SELECT t.a, count(*) FROM nt t GROUP BY t.a";
    "SELECT DISTINCT t.a FROM nt t";
    "SELECT t.k, u.a FROM nt t LEFT OUTER JOIN nu u ON (t.a = u.a)";
    "SELECT t.k FROM nt t LEFT OUTER JOIN nu u ON (t.a = u.a) WHERE u.a IS \
     NULL";
    "SELECT t.k, CASE WHEN t.a = 10 THEN 'ten' ELSE t.b END FROM nt t";
    "SELECT t.k FROM nt t WHERE CASE WHEN t.a IS NULL THEN FALSE ELSE t.a = \
     10 END";
    "SELECT t.k FROM nt t WHERE t.a = (SELECT max(u.a) FROM nu u WHERE u.k = \
     2)";
    "SELECT t.k FROM nt t WHERE t.a >= ALL (SELECT u.a FROM nu u WHERE u.k > \
     5)";
  ]

let null_db budget =
  let db = Starburst.create () in
  Sb_extensions.Outer_join.install db;
  ignore (Starburst.run_script db null_ddl);
  (match budget with
  | Some _ -> db.Starburst.rewrite_budget <- budget
  | None -> ());
  db

let test_null_semantics () =
  let reference = null_db (Some 0) in
  let optimized = null_db None in
  List.iter
    (fun text ->
      let a = q reference text and b = q optimized text in
      match Rule_audit.compare_results ~ordered:false a b with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s\n  %s" text msg)
    null_fixtures;
  (* a few hand-computed anchors so both pipelines can't agree on a
     shared wrong answer *)
  Alcotest.(check int)
    "3VL: a = 10 keeps only known-true rows" 2
    (List.length (q optimized "SELECT t.k FROM nt t WHERE t.a = 10"));
  Alcotest.(check int)
    "3VL: NOT (a = 10) drops NULLs too" 1
    (List.length (q optimized "SELECT t.k FROM nt t WHERE NOT (t.a = 10)"));
  Alcotest.(check int)
    "a = NULL is never true" 0
    (List.length (q optimized "SELECT t.k FROM nt t WHERE t.a = NULL"));
  Alcotest.(check int)
    "NOT IN with a NULL in the subquery filters everything" 0
    (List.length
       (q optimized
          "SELECT t.k FROM nt t WHERE NOT (t.k IN (SELECT u.a FROM nu u))"));
  check_bag "count(*) counts NULL rows, count(a) does not"
    [ row [ i 5 ] ]
    (q optimized "SELECT count(*) FROM nt t");
  check_bag "count(a) skips NULLs"
    [ row [ i 3 ] ]
    (q optimized "SELECT count(t.a) FROM nt t");
  Alcotest.(check int)
    "GROUP BY folds NULLs into one group" 3
    (List.length (q optimized "SELECT t.a, count(*) FROM nt t GROUP BY t.a"));
  Alcotest.(check int)
    ">= ALL over an empty set is TRUE for every row" 5
    (List.length
       (q optimized
          "SELECT t.k FROM nt t WHERE t.a >= ALL (SELECT u.a FROM nu u WHERE \
           u.k > 5)"))

let suite =
  ( "fuzz",
    [
      case "repro corpus replays clean" test_corpus;
      case "harness is deterministic" test_determinism;
      case "generator is deterministic" test_generator_determinism;
      case "broken rule caught and shrunk" test_broken_rule_caught;
      case "NULL semantics: reference vs optimized" test_null_semantics;
    ] )
