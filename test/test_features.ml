(** Tests for the second wave of features: prepared statements and the
    plan cache, hidden ORDER BY columns, the Bloom-join extension, the
    in-place page access paths, and the extended scalar-function
    library. *)

open Sb_storage
module Plan = Sb_optimizer.Plan
module Exec = Sb_qes.Exec
open Test_util

(* --- prepared statements --- *)

let test_prepare_execute () =
  let db = sample_db () in
  let p = Starburst.prepare db "SELECT partno FROM quotations WHERE price < :lim" in
  Alcotest.(check (list string)) "columns" [ "partno" ] p.Starburst.prep_columns;
  Starburst.bind_host db "lim" (f 15.0);
  check_bag "first binding" [ row [ i 1 ]; row [ i 1 ]; row [ i 3 ] ]
    (Starburst.execute_prepared db p);
  (* same plan, new binding *)
  Starburst.bind_host db "lim" (f 8.0);
  check_bag "second binding" [ row [ i 3 ] ] (Starburst.execute_prepared db p)

let test_plan_cache () =
  let db = sample_db () in
  let text = "SELECT count(*) FROM quotations" in
  let resident () = (Starburst.plan_cache_stats db).Starburst.Plan_cache.resident in
  check_bag "first" [ row [ i 5 ] ] (Starburst.cached_query db text);
  let hits0 = (Starburst.plan_cache_stats db).Starburst.Plan_cache.hits in
  check_bag "cached" [ row [ i 5 ] ] (Starburst.cached_query db text);
  Alcotest.(check bool) "cache populated" true (resident () > 0);
  Alcotest.(check int) "second run hits" (hits0 + 1)
    (Starburst.plan_cache_stats db).Starburst.Plan_cache.hits;
  (* DDL invalidates (epoch bump; the stale entry is dropped lazily) *)
  ignore (Starburst.run db "CREATE TABLE zz (a INT)");
  let inv0 = (Starburst.plan_cache_stats db).Starburst.Plan_cache.invalidations in
  check_bag "repopulate" [ row [ i 5 ] ] (Starburst.cached_query db text);
  Alcotest.(check int) "DDL invalidated the entry" (inv0 + 1)
    (Starburst.plan_cache_stats db).Starburst.Plan_cache.invalidations;
  (* data changes are visible without invalidation (plans re-read) *)
  ignore (Starburst.run db "INSERT INTO quotations VALUES (9, 1.0, 1, 'x')");
  check_bag "sees new data" [ row [ i 6 ] ] (Starburst.cached_query db text)

(* --- hidden ORDER BY columns --- *)

let test_order_by_hidden_column () =
  let db = sample_db () in
  (* ORDER BY a column that is not projected *)
  check_rows "hidden key"
    [ row [ i 3 ]; row [ i 1 ]; row [ i 1 ]; row [ i 2 ]; row [ i 4 ] ]
    (q db "SELECT partno FROM quotations ORDER BY price");
  check_rows "hidden expression"
    [ row [ s "initech" ]; row [ s "acme" ] ]
    (q db "SELECT supplier FROM quotations WHERE order_qty < 10 ORDER BY price * order_qty DESC");
  (* DISTINCT + hidden order key is rejected (ambiguous semantics) *)
  expect_error db "SELECT DISTINCT supplier FROM quotations ORDER BY price"

(* --- bloom join --- *)

let bloom_db () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE small_t (k INT NOT NULL, tag STRING)");
  ignore (Starburst.run db "CREATE TABLE big_t (k INT NOT NULL, pay INT)");
  ignore
    (Starburst.run db
       ("INSERT INTO small_t VALUES "
       ^ String.concat "," (List.init 20 (fun x -> Printf.sprintf "(%d, 't%d')" (x * 50) x))));
  ignore
    (Starburst.run db
       ("INSERT INTO big_t VALUES "
       ^ String.concat "," (List.init 2000 (fun x -> Printf.sprintf "(%d, %d)" x (x * 2)))));
  ignore (Starburst.run db "ANALYZE");
  Starburst.Extension.set_site_map db (fun t -> if t = "big_t" then "east" else "local");
  db

let test_bloom_join_correct () =
  let db = bloom_db () in
  let text = "SELECT s.tag, b.pay FROM small_t s, big_t b WHERE s.k = b.k" in
  let base = q db text in
  Sb_extensions.Bloom_join.install db;
  let bloomed = q db text in
  check_bag "bloom agrees with base plan" base bloomed;
  let rec ops (p : Plan.plan) = p.Plan.op :: List.concat_map ops p.Plan.inputs in
  let plan = Starburst.compile_text db text in
  Alcotest.(check bool) "bloom chosen when remote" true
    (List.exists (function Plan.Bloom_filter _ -> true | _ -> false) (ops plan));
  (* local tables never trigger it *)
  Starburst.Extension.set_site_map db (fun _ -> "local");
  let plan2 = Starburst.compile_text db text in
  Alcotest.(check bool) "not chosen locally" false
    (List.exists (function Plan.Bloom_filter _ -> true | _ -> false) (ops plan2))

let test_bloom_ships_less () =
  let db = bloom_db () in
  let text = "SELECT count(*) FROM small_t s, big_t b WHERE s.k = b.k" in
  ignore (q db text);
  let shipped_base = (Starburst.counters db).Exec.c_shipped in
  Sb_extensions.Bloom_join.install db;
  ignore (q db text);
  let shipped_bloom = (Starburst.counters db).Exec.c_shipped in
  Alcotest.(check bool) "fewer shipped" true (shipped_bloom < shipped_base)

(* --- page sub-record access --- *)

let test_page_sub_access () =
  let p = Page.create 0 in
  let slot = Page.insert p "abcdefgh" in
  Alcotest.(check (option string)) "read sub" (Some "cde") (Page.read_sub p slot ~pos:2 ~len:3);
  Alcotest.(check bool) "write sub" true (Page.write_sub p slot ~pos:2 "XY");
  Alcotest.(check (option string)) "after write" (Some "abXYefgh") (Page.get p slot);
  Alcotest.(check (option string)) "oob read" None (Page.read_sub p slot ~pos:6 ~len:5);
  Alcotest.(check bool) "oob write" false (Page.write_sub p slot ~pos:7 "long");
  Page.delete p slot;
  Alcotest.(check (option string)) "dead read" None (Page.read_sub p slot ~pos:0 ~len:1)

(* --- extended scalar functions --- *)

let test_scalar_library () =
  let db = sample_db () in
  let one text expected =
    check_bag text [ row [ expected ] ]
      (q db (Printf.sprintf "SELECT %s FROM inventory WHERE partno = 1" text))
  in
  one "round(2.6)" (i 3);
  one "floor(2.6)" (i 2);
  one "ceil(2.2)" (i 3);
  one "sign(0 - 5)" (i (-1));
  one "sign(0)" (i 0);
  one "trim('  x  ')" (s "x");
  one "replace('banana', 'an', 'A')" (s "bAAa");
  one "greatest(1, 9, 3)" (i 9);
  one "least(5, 2, 8)" (i 2);
  one "greatest(NULL, 4)" (i 4);
  one "nullif(3, 3)" nul;
  one "nullif(3, 4)" (i 3);
  one "sqrt(16)" (f 4.0);
  one "power(2, 10)" (f 1024.0)

(* --- prepared + counters interplay: plan reuse skips compilation --- *)

let test_prepared_skips_compile () =
  let db = sample_db () in
  let p = Starburst.prepare db "SELECT partno FROM quotations WHERE partno = 2" in
  (* compile once, run many: this mostly asserts nothing crashes and the
     results stay stable across data changes *)
  check_bag "run1" [ row [ i 2 ] ] (Starburst.execute_prepared db p);
  ignore (Starburst.run db "INSERT INTO quotations VALUES (2, 3.0, 9, 'x')");
  check_bag "run2 sees inserts" [ row [ i 2 ]; row [ i 2 ] ]
    (Starburst.execute_prepared db p)

let suite =
  ( "features",
    [
      case "prepare/execute with host variables" test_prepare_execute;
      case "plan cache and DDL invalidation" test_plan_cache;
      case "ORDER BY hidden columns" test_order_by_hidden_column;
      case "bloom join correctness" test_bloom_join_correct;
      case "bloom join ships less" test_bloom_ships_less;
      case "page sub-record access" test_page_sub_access;
      case "scalar function library" test_scalar_library;
      case "prepared plans survive data changes" test_prepared_skips_compile;
    ] )

(* --- lateral (correlated) derived tables and ablated rule sets --- *)

let test_lateral_derived_table () =
  let db = sample_db () in
  (* the derived table references a sibling: a lateral apply *)
  check_bag "lateral"
    [ row [ i 1; i 20 ]; row [ i 2; i 500 ]; row [ i 3; i 10 ]; row [ i 4; i 1 ] ]
    (q db
       "SELECT i.partno, x.oq FROM inventory i, (SELECT onhand_qty AS oq FROM \
        inventory b WHERE b.partno = i.partno) x");
  (* lateral against an aggregate *)
  check_bag "lateral agg"
    [ row [ i 1; i 2 ]; row [ i 2; i 1 ]; row [ i 3; i 1 ]; row [ i 4; i 1 ] ]
    (q db
       "SELECT i.partno, x.n FROM inventory i, (SELECT count(*) AS n FROM \
        quotations q WHERE q.partno = i.partno) x")

let test_rule_class_ablation_correct () =
  (* disabling any one rule class must not change results, only cost *)
  let text =
    "SELECT partno, price FROM quotations Q1 WHERE Q1.partno IN (SELECT \
     partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty)"
  in
  let baseline = q (sample_db ()) text in
  List.iter
    (fun cl ->
      let db = sample_db () in
      let all = Sb_rewrite.Rule.all db.Starburst.Corona.rules in
      db.Starburst.Corona.rules.Sb_rewrite.Rule.rules <-
        List.filter (fun r -> r.Sb_rewrite.Rule.rule_class <> cl) all;
      check_bag ("class " ^ cl ^ " disabled") baseline (q db text))
    [ "merge"; "predicate"; "projection"; "subquery"; "redundant"; "magic" ]

let suite =
  ( fst suite,
    snd suite
    @ [
        case "lateral derived tables" test_lateral_derived_table;
        case "rule-class ablation preserves results" test_rule_class_ablation_correct;
      ] )

(* --- integrity constraints as attachments --- *)

let test_unique_enforced () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE uq (k INT UNIQUE, v STRING)");
  ignore (Starburst.run db "INSERT INTO uq VALUES (1, 'a'), (2, 'b')");
  expect_error db "INSERT INTO uq VALUES (1, 'dup')";
  (* the failing batch did not partially apply before the violation *)
  check_bag "count after rejection" [ row [ i 2 ] ] (q db "SELECT count(*) FROM uq");
  (* nulls never conflict *)
  ignore (Starburst.run db "INSERT INTO uq VALUES (NULL, 'x'), (NULL, 'y')");
  check_bag "nulls allowed" [ row [ i 4 ] ] (q db "SELECT count(*) FROM uq");
  (* updates: moving onto a taken key fails, keeping one's own key is fine *)
  expect_error db "UPDATE uq SET k = 2 WHERE k = 1";
  (match Starburst.run db "UPDATE uq SET v = 'a2' WHERE k = 1" with
  | Starburst.Affected 1 -> ()
  | _ -> Alcotest.fail "self-keyed update should pass");
  check_bag "value updated" [ row [ s "a2" ] ] (q db "SELECT v FROM uq WHERE k = 1")

let test_check_constraint_extension () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE acc (id INT, balance FLOAT)");
  ignore (Starburst.run db "INSERT INTO acc VALUES (1, 10.0)");
  Sb_extensions.Check_constraint.attach db ~table:"acc" ~name:"non_negative"
    (fun tuple ->
      match tuple.(1) with
      | Value.Float b -> b >= 0.0
      | Value.Null -> true
      | _ -> false);
  ignore (Starburst.run db "INSERT INTO acc VALUES (2, 5.0)");
  expect_error db "INSERT INTO acc VALUES (3, 0.0 - 1.0)";
  expect_error db "UPDATE acc SET balance = balance - 100 WHERE id = 1";
  check_bag "intact" [ row [ i 2 ] ] (q db "SELECT count(*) FROM acc");
  (* attaching over violating data is rejected *)
  ignore (Starburst.run db "CREATE TABLE neg (x FLOAT)");
  ignore (Starburst.run db "INSERT INTO neg VALUES (0.0 - 3.0)");
  (match
     Sb_extensions.Check_constraint.attach db ~table:"neg" ~name:"pos"
       (fun t -> Value.as_float t.(0) >= 0.0)
   with
  | () -> Alcotest.fail "expected rejection"
  | exception Starburst.Error _ -> ());
  (* detaching lifts the rule *)
  Sb_extensions.Check_constraint.detach db ~table:"acc" ~name:"non_negative";
  ignore (Starburst.run db "INSERT INTO acc VALUES (9, 0.0 - 2.0)");
  check_bag "after detach" [ row [ i 3 ] ] (q db "SELECT count(*) FROM acc")

let suite =
  ( fst suite,
    snd suite
    @ [
        case "UNIQUE constraints enforced" test_unique_enforced;
        case "DBC check-constraint attachment" test_check_constraint_extension;
      ] )

(* --- plan refinement --- *)

let test_refinement () =
  let db = sample_db () in
  let rec ops (p : Plan.plan) = p.Plan.op :: List.concat_map ops p.Plan.inputs in
  (* a lateral apply produces a Filter over the joined stream; the plan
     as a whole must contain no Filter-over-Scan after refinement *)
  let p = Starburst.compile_text db "SELECT partno FROM quotations WHERE price > 10 AND order_qty < 60" in
  let rec no_filter_over_scan (pl : Plan.plan) =
    (match pl.Plan.op, pl.Plan.inputs with
    | Plan.Filter _, [ { Plan.op = Plan.Scan _; _ } ] -> false
    | _ -> true)
    && List.for_all no_filter_over_scan pl.Plan.inputs
  in
  Alcotest.(check bool) "filters folded into scans" true (no_filter_over_scan p);
  (* no adjacent projections *)
  let rec no_adjacent_projects (pl : Plan.plan) =
    (match pl.Plan.op, pl.Plan.inputs with
    | Plan.Project _, [ { Plan.op = Plan.Project _; _ } ] -> false
    | _ -> true)
    && List.for_all no_adjacent_projects pl.Plan.inputs
  in
  let p2 =
    Starburst.compile_text db
      "SELECT pn + 1 FROM (SELECT partno AS pn FROM quotations ORDER BY price) v"
  in
  Alcotest.(check bool) "projects fused" true (no_adjacent_projects p2);
  ignore ops;
  (* refinement preserves semantics on a broad query *)
  check_bag "refined results"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db "SELECT partno FROM quotations WHERE price > 10 AND order_qty < 60 OR partno = 3")

let suite =
  (fst suite, snd suite @ [ case "plan refinement" test_refinement ])

(* --- index ANDing --- *)

let test_index_anding () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE wide (a INT NOT NULL, b INT NOT NULL, pay INT)");
  ignore
    (Starburst.run db
       ("INSERT INTO wide VALUES "
       ^ String.concat ","
           (List.init 4000 (fun k ->
                Printf.sprintf "(%d, %d, %d)" (k mod 80) (k / 50) k))));
  let query = "SELECT pay FROM wide WHERE a = 7 AND b = 13" in
  let baseline = q db query in
  ignore (Starburst.run db "CREATE INDEX wide_a ON wide (a)");
  ignore (Starburst.run db "CREATE INDEX wide_b ON wide (b)");
  ignore (Starburst.run db "ANALYZE");
  let p = Starburst.compile_text db query in
  let rec ops (pl : Plan.plan) = pl.Plan.op :: List.concat_map ops pl.Plan.inputs in
  Alcotest.(check bool) "index ANDing chosen" true
    (List.exists (function Plan.Idx_and _ -> true | _ -> false) (ops p));
  check_bag "same rows as scan" baseline (q db query);
  (* probes are counted per index *)
  let c = Starburst.counters db in
  Alcotest.(check bool) "two probes" true (c.Exec.c_index_probes >= 2);
  (* with only one index the single-probe plan is used instead *)
  ignore (Starburst.run db "DROP INDEX wide_b ON wide");
  let p2 = Starburst.compile_text db query in
  Alcotest.(check bool) "no ANDing with one index" false
    (List.exists (function Plan.Idx_and _ -> true | _ -> false) (ops p2));
  check_bag "still correct" baseline (q db query)

let suite =
  (fst suite, snd suite @ [ case "index ANDing" test_index_anding ])
