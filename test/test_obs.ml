(** Observability tests: span nesting and timing monotonicity, the ring
    buffer bound, log-scale histogram bucketing, the no-op tracer fast
    path, the metrics dump (including the executor's c_* counters and
    per-rule rewrite firings), and an integration test asserting that
    EXPLAIN ANALYZE's actual row counts match the Rows result on a
    parts_supply-style query. *)

open Test_util
module Trace = Sb_obs.Trace
module Metrics = Sb_obs.Metrics
module Engine = Sb_rewrite.Engine

(* --- spans --- *)

let test_span_nesting () =
  let tr = Trace.create () in
  let v =
    Trace.with_span tr "outer" (fun () ->
        Trace.with_span tr "inner1" (fun () -> ());
        Trace.with_span tr "inner2" ~attrs:[ ("k", "v") ] (fun () -> 42))
  in
  Alcotest.(check int) "value returned" 42 v;
  let spans = Trace.spans tr in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun sp -> sp.Trace.sp_name = name) spans in
  let outer = find "outer" and i1 = find "inner1" and i2 = find "inner2" in
  Alcotest.(check int) "outer is a root" (-1) outer.Trace.sp_parent;
  Alcotest.(check int) "inner1 under outer" outer.Trace.sp_id i1.Trace.sp_parent;
  Alcotest.(check int) "inner2 under outer" outer.Trace.sp_id i2.Trace.sp_parent;
  Alcotest.(check (list (pair string string)))
    "attrs recorded" [ ("k", "v") ] i2.Trace.sp_attrs;
  (* timing monotonicity: children start no earlier than the parent and
     fit inside it; inner2 starts after inner1 *)
  Alcotest.(check bool) "durations non-negative" true
    (List.for_all (fun sp -> sp.Trace.sp_dur_ns >= 0L) spans);
  Alcotest.(check bool) "inner1 starts within outer" true
    (i1.Trace.sp_start_ns >= outer.Trace.sp_start_ns);
  Alcotest.(check bool) "inner2 starts after inner1" true
    (i2.Trace.sp_start_ns >= i1.Trace.sp_start_ns);
  Alcotest.(check bool) "children fit inside outer" true
    (Int64.add i2.Trace.sp_start_ns i2.Trace.sp_dur_ns
     <= Int64.add outer.Trace.sp_start_ns outer.Trace.sp_dur_ns);
  let tree = Trace.to_tree tr in
  Alcotest.(check bool) "tree indents inner spans" true
    (String.length tree > 0
    && (let lines = String.split_on_char '\n' tree in
        List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "  ") lines))

let test_span_exception_safety () =
  let tr = Trace.create () in
  (try
     Trace.with_span tr "boom" (fun () -> failwith "inner failure")
   with Failure _ -> ());
  match Trace.spans tr with
  | [ sp ] -> Alcotest.(check string) "span recorded" "boom" sp.Trace.sp_name
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_ring_buffer_bound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun sp -> sp.Trace.sp_name) (Trace.spans tr) in
  Alcotest.(check (list string)) "last four retained, oldest first"
    [ "s3"; "s4"; "s5"; "s6" ] names;
  Alcotest.(check int) "two dropped" 2 (Trace.dropped tr)

let test_noop_fast_path () =
  let tr = Trace.noop in
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  let v = Trace.with_span tr "ignored" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 v;
  Trace.add_attr tr "k" "v";
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.spans tr));
  Alcotest.(check string) "empty json" "[]" (Trace.to_json tr)

let test_json_export () =
  let tr = Trace.create () in
  Trace.with_span tr "a \"quoted\" name" (fun () -> ());
  let json = Trace.to_json tr in
  Alcotest.(check bool) "escapes quotes" true
    (String.length json > 0
    && (let sub = "a \\\"quoted\\\" name" in
        let rec mem i =
          i + String.length sub <= String.length json
          && (String.sub json i (String.length sub) = sub || mem (i + 1))
        in
        mem 0))

(* --- metrics --- *)

let test_histogram_bucketing () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat_ns" in
  (* log2 buckets: bucket i has inclusive upper bound 2^i *)
  Alcotest.(check int) "1 -> bucket 0" 0 (Metrics.bucket_index h 1.0);
  Alcotest.(check int) "2 -> bucket 1" 1 (Metrics.bucket_index h 2.0);
  Alcotest.(check int) "3 -> bucket 2" 2 (Metrics.bucket_index h 3.0);
  Alcotest.(check int) "1024 -> bucket 10" 10 (Metrics.bucket_index h 1024.0);
  Alcotest.(check int) "1025 -> bucket 11" 11 (Metrics.bucket_index h 1025.0);
  Alcotest.(check int) "huge clamps to last" 31
    (Metrics.bucket_index h 1e30);
  List.iter (fun v -> Metrics.observe h v) [ 1.0; 2.0; 3.0; 1024.0; 1e30 ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check bool) "sum" true (Metrics.histogram_sum h > 1e29);
  let buckets = Metrics.histogram_buckets h in
  Alcotest.(check int) "bucket count" 32 (List.length buckets);
  Alcotest.(check (float 0.0)) "last bound is +Inf" infinity
    (fst (List.nth buckets 31));
  let dump = Metrics.dump m in
  let contains sub =
    let rec mem i =
      i + String.length sub <= String.length dump
      && (String.sub dump i (String.length sub) = sub || mem (i + 1))
    in
    mem 0
  in
  Alcotest.(check bool) "dump has TYPE line" true
    (contains "# TYPE lat_ns histogram");
  Alcotest.(check bool) "dump has le buckets" true
    (contains "lat_ns_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "dump has +Inf bucket" true
    (contains "lat_ns_bucket{le=\"+Inf\"} 5");
  Alcotest.(check bool) "dump has count" true (contains "lat_ns_count 5")

let test_counters_shared_output_path () =
  let db = sample_db () in
  ignore (q db "SELECT partno FROM quotations");
  let dump = Starburst.metrics_dump db in
  let contains sub =
    let rec mem i =
      i + String.length sub <= String.length dump
      && (String.sub dump i (String.length sub) = sub || mem (i + 1))
    in
    mem 0
  in
  (* the executor's c_* counters flow into the same dump; scanned comes
     only from the final SELECT (the INSERTs use VALUES scans) *)
  Alcotest.(check bool) "scanned counter in dump" true
    (contains "sb_exec_scanned_total 5");
  Alcotest.(check bool) "output counter in dump" true
    (contains "sb_exec_output_total")

let test_per_rule_stats () =
  let db = sample_db () in
  ignore
    (q db
       "SELECT q.partno FROM quotations q WHERE q.partno IN (SELECT partno \
        FROM inventory)");
  match Starburst.last_rewrite db with
  | None -> Alcotest.fail "expected rewrite stats"
  | Some stats ->
    let rows = Engine.per_rule stats in
    Alcotest.(check bool) "some rule attempted" true (rows <> []);
    let total_fires = List.fold_left (fun a (_, f, _) -> a + f) 0 rows in
    Alcotest.(check int) "per-rule fires sum to total" stats.Engine.rules_fired
      total_fires;
    List.iter
      (fun (name, fires, attempts) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: attempts >= fires" name)
          true (attempts >= fires))
      rows

(* --- pipeline tracing --- *)

let test_pipeline_spans () =
  let db = sample_db () in
  let tr = Sb_obs.Trace.create () in
  Starburst.set_tracer db tr;
  ignore
    (q db
       "SELECT q.partno FROM quotations q WHERE q.partno IN (SELECT partno \
        FROM inventory WHERE type = 'CPU')");
  let names = List.map (fun sp -> sp.Trace.sp_name) (Trace.spans tr) in
  let has name = List.mem name names in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " span present") true (has stage))
    [
      "stage.parse"; "stage.build"; "stage.rewrite"; "stage.optimize";
      "stage.refine"; "stage.execute"; "rewrite.fire"; "star.expand";
    ];
  (* rule-firing spans nest under the rewrite stage *)
  let spans = Trace.spans tr in
  let rewrite_span =
    List.find (fun sp -> sp.Trace.sp_name = "stage.rewrite") spans
  in
  let fire =
    List.find (fun sp -> sp.Trace.sp_name = "rewrite.fire") spans
  in
  Alcotest.(check int) "fire nests under rewrite" rewrite_span.Trace.sp_id
    fire.Trace.sp_parent;
  Alcotest.(check bool) "fire has rule attr" true
    (List.mem_assoc "rule" fire.Trace.sp_attrs);
  Alcotest.(check bool) "fire has boxes_before attr" true
    (List.mem_assoc "boxes_before" fire.Trace.sp_attrs);
  (* stage latencies landed in the metrics histograms *)
  let dump = Starburst.metrics_dump db in
  let contains sub =
    let rec mem i =
      i + String.length sub <= String.length dump
      && (String.sub dump i (String.length sub) = sub || mem (i + 1))
    in
    mem 0
  in
  Alcotest.(check bool) "stage histogram in dump" true
    (contains "sb_stage_duration_ns_bucket{stage=\"execute\"");
  Alcotest.(check bool) "per-rule counter in dump" true
    (contains "sb_rewrite_rule_fires_total{rule=")

(* --- EXPLAIN ANALYZE integration --- *)

(** On a parts_supply-style schema, EXPLAIN ANALYZE's per-operator
    actual row counts must agree with the Rows result of running the
    same query. *)
let test_explain_analyze_matches_rows () =
  let db = Starburst.create () in
  let run s = ignore (Starburst.run db s) in
  run "CREATE TABLE parts (partno INT NOT NULL UNIQUE, pname STRING, weight FLOAT)";
  run "CREATE TABLE supply (sid INT, partno INT, qty INT, cost FLOAT)";
  run
    "INSERT INTO parts VALUES (1,'bolt',0.1),(2,'nut',0.05),(3,'gear',2.5),\
     (4,'axle',7.0),(5,'frame',22.0)";
  run
    "INSERT INTO supply VALUES (10,1,1000,0.02),(10,2,800,0.01),(10,3,50,3.1),\
     (11,1,200,0.03),(11,4,20,8.5),(12,5,5,30.0),(12,3,60,2.9),(11,3,10,3.5)";
  run "ANALYZE";
  let query =
    "SELECT p.pname, s.qty FROM parts p, supply s WHERE p.partno = s.partno \
     AND s.qty > 50"
  in
  let rows =
    match Starburst.run db query with
    | Starburst.Rows { rows; _ } -> rows
    | _ -> Alcotest.fail "expected rows"
  in
  let n = List.length rows in
  Alcotest.(check bool) "query returns rows" true (n > 0);
  let report =
    match Starburst.run db ("EXPLAIN ANALYZE " ^ query) with
    | Starburst.Message m -> m
    | _ -> Alcotest.fail "expected explain output"
  in
  let contains sub =
    let rec mem i =
      i + String.length sub <= String.length report
      && (String.sub report i (String.length sub) = sub || mem (i + 1))
    in
    mem 0
  in
  (* the root operator's actual row count equals the result cardinality,
     and the report carries estimates, timings and the row summary *)
  Alcotest.(check bool) "root actual rows match result" true
    (contains (Printf.sprintf "actual rows=%d" n));
  Alcotest.(check bool) "estimates printed" true (contains "est_rows=");
  Alcotest.(check bool) "stage timings printed" true
    (contains "== STAGE TIMINGS ==");
  Alcotest.(check bool) "execute stage timed" true (contains "execute");
  Alcotest.(check bool) "row summary" true
    (contains (Printf.sprintf "%d row(s)" n));
  (* direct API agreement: run_analyzed's root stats equal the rows *)
  let plan = Starburst.compile_text db query in
  let rows', lookup =
    Starburst.Corona.Exec.run_analyzed db.Starburst.Corona.exec_db plan
  in
  Alcotest.(check int) "run_analyzed returns same rows" n (List.length rows');
  (match lookup plan with
  | Some st ->
    Alcotest.(check int) "root operator row count" n st.Starburst.Corona.Exec.os_rows;
    Alcotest.(check bool) "root operator timed" true
      (st.Starburst.Corona.Exec.os_ns >= 0L)
  | None -> Alcotest.fail "no stats for root operator")

let suite =
  ( "observability",
    [
      Alcotest.test_case "span nesting and timing" `Quick test_span_nesting;
      Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
      Alcotest.test_case "ring buffer bound" `Quick test_ring_buffer_bound;
      Alcotest.test_case "no-op tracer fast path" `Quick test_noop_fast_path;
      Alcotest.test_case "json export escaping" `Quick test_json_export;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "exec counters share the dump" `Quick
        test_counters_shared_output_path;
      Alcotest.test_case "per-rule fires and attempts" `Quick test_per_rule_stats;
      Alcotest.test_case "pipeline stage spans" `Quick test_pipeline_spans;
      Alcotest.test_case "EXPLAIN ANALYZE matches Rows" `Quick
        test_explain_analyze_matches_rows;
    ] )
