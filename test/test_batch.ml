(** Batch-engine edge cases: the seams of the vectorized QES.

    Everything here runs the same query (or the same compiled plan)
    under both engines — [SET vectorized] flips between the
    batch-at-a-time implementation and the tuple-at-a-time reference —
    and checks they agree exactly at the places batches can crack:
    empty inputs, batches the filter empties entirely, LIMIT straddling
    the 1024-row batch capacity, NULL join keys under the hash and
    sort-merge methods, duplicate sort keys spanning a batch boundary,
    the governor's row ceiling tripping inside a batch, and a
    structured Exec error thrown mid-batch rolling back the implicit
    transaction. *)

open Test_util
module Plan = Sb_optimizer.Plan

let run db s = ignore (Starburst.run db s)
let set_vec db on = run db (if on then "SET vectorized = on" else "SET vectorized = off")

(* 2100 rows (just over two batches): k = 0..2099 unique, v = k / 3
   (duplicate groups of three, one of which spans rows 1023..1025 —
   the batch boundary), tag = 'r<k>' *)
let rows_total = 2100

let batch_db () =
  let db = Starburst.create () in
  run db "CREATE TABLE bt (k INT NOT NULL, v INT, tag STRING)";
  let chunk = 300 in
  for c = 0 to (rows_total / chunk) - 1 do
    let vals =
      List.init chunk (fun j ->
          let i = (c * chunk) + j in
          Printf.sprintf "(%d, %d, 'r%d')" i (i / 3) i)
    in
    run db ("INSERT INTO bt VALUES " ^ String.concat ", " vals)
  done;
  run db "CREATE TABLE nk (k INT, v INT)";
  run db "INSERT INTO nk VALUES (1, 10), (NULL, 20), (2, 30), (NULL, 40), (1, 50)";
  run db "ANALYZE";
  db

(* run [text] under both engines; returns (tuple rows, vectorized rows) *)
let both db text =
  set_vec db false;
  let t = q db text in
  set_vec db true;
  let v = q db text in
  (t, v)

let check_engines_agree msg db text =
  let t, v = both db text in
  check_bag msg t v;
  (t, v)

(* rebuilds a plan with every hash join flipped to the sort-merge
   method: both engines execute Sort_merge through the same keyed-probe
   body, so the flip is semantics-preserving and lets the test drive
   the merge path deterministically (the optimizer would otherwise pick
   the method by cost) *)
let rec to_merge (p : Plan.plan) : Plan.plan =
  let inputs = List.map to_merge p.Plan.inputs in
  let op =
    match p.Plan.op with
    | Plan.Join ({ j_method = Plan.Hash_join; _ } as j) ->
      Plan.Join { j with j_method = Plan.Sort_merge }
    | op -> op
  in
  { p with Plan.op; inputs }

let both_plan db (plan : Plan.plan) =
  set_vec db false;
  let t = Starburst.run_plan db plan in
  set_vec db true;
  let v = Starburst.run_plan db plan in
  (t, v)

(* --- empty inputs and emptied batches --- *)

let test_empty_input () =
  let db = batch_db () in
  let t, v = check_engines_agree "empty scan" db "SELECT k FROM bt WHERE k < 0" in
  Alcotest.(check int) "no rows" 0 (List.length t);
  Alcotest.(check int) "no rows vectorized" 0 (List.length v);
  (* keyless aggregation over an empty input still produces its one row *)
  let t, _ = check_engines_agree "count over empty" db
      "SELECT count(*) FROM bt WHERE k < 0" in
  check_bag "count is 0" [ row [ i 0 ] ] t;
  (* a join whose outer is empty must never evaluate the inner *)
  let t, _ = check_engines_agree "empty outer join" db
      "SELECT a.k FROM bt a, bt b WHERE a.k = b.k AND a.k < 0" in
  Alcotest.(check int) "empty join" 0 (List.length t)

let test_all_filtered_batches () =
  let db = batch_db () in
  (* the first two input batches are filtered away entirely; only the
     tail of the third survives *)
  let t, v = both db "SELECT k FROM bt WHERE k >= 2000" in
  Alcotest.(check int) "tail rows" 100 (List.length t);
  check_rows "same rows, same order" t v

(* --- LIMIT straddling the batch capacity (1024) --- *)

let test_limit_at_batch_boundary () =
  let db = batch_db () in
  List.iter
    (fun n ->
      let text = Printf.sprintf "SELECT k FROM bt LIMIT %d" n in
      let t, v = both db text in
      Alcotest.(check int) (Printf.sprintf "limit %d count" n) n (List.length t);
      check_rows (Printf.sprintf "limit %d rows agree" n) t v)
    [ 1023; 1024; 1025 ]

(* --- NULL join keys: hash and sort-merge methods --- *)

let test_null_join_keys () =
  let db = batch_db () in
  (* k = 1 twice, k = 2 once, two NULLs that must match nothing (not
     even each other): 2*2 + 1 = 5 pairs *)
  let text = "SELECT a.v, b.v FROM nk a, nk b WHERE a.k = b.k" in
  let t, v = check_engines_agree "null keys, hash" db text in
  Alcotest.(check int) "5 pairs" 5 (List.length t);
  Alcotest.(check int) "5 pairs vectorized" 5 (List.length v);
  let merged = to_merge (Starburst.compile_text db text) in
  let tm, vm = both_plan db merged in
  check_bag "null keys, merge: engines agree" tm vm;
  check_bag "merge agrees with hash" t tm

(* --- duplicate sort-merge keys across a batch boundary --- *)

let test_merge_ties_at_batch_boundary () =
  let db = batch_db () in
  (* v groups rows in threes; group 341 spans physical rows
     1023..1025, so its tie group straddles the first batch boundary *)
  let text = "SELECT a.k, b.k FROM bt a, bt b WHERE a.v = b.v" in
  let merged = to_merge (Starburst.compile_text db text) in
  let tm, vm = both_plan db merged in
  Alcotest.(check int) "3 matches per row" (rows_total * 3) (List.length tm);
  check_bag "merge ties agree across engines" tm vm;
  (* and the boundary group itself is intact: rows 1023..1025 pair 9 ways *)
  let t, v =
    check_engines_agree "boundary group" db
      "SELECT a.k, b.k FROM bt a, bt b WHERE a.v = b.v AND a.v = 341"
  in
  Alcotest.(check int) "9 pairs" 9 (List.length t);
  Alcotest.(check int) "9 pairs vectorized" 9 (List.length v)

(* --- governor: row ceiling exhausted inside a batch --- *)

let test_governor_ceiling_mid_batch () =
  let db = batch_db () in
  run db "SET limit_intermediate_rows = 100";
  (* the ceiling (100) is below one batch (1024): the charge for the
     first batch must trip it, under either engine *)
  let expect_resource () =
    match Starburst.run db "SELECT k FROM bt" with
    | _ -> Alcotest.fail "expected a resource error"
    | exception Starburst.Error e ->
      Alcotest.(check string) "stage" "resource"
        (Sb_resil.Err.stage_name e.Sb_resil.Err.err_stage)
  in
  set_vec db true;
  expect_resource ();
  set_vec db false;
  expect_resource ();
  (* lifting the ceiling restores the query *)
  run db "SET limit_intermediate_rows = 0";
  set_vec db true;
  Alcotest.(check int) "recovers" rows_total (List.length (q db "SELECT k FROM bt"))

(* --- structured Exec error mid-batch; implicit-transaction rollback --- *)

let test_exec_error_mid_batch () =
  let db = batch_db () in
  (* the conjunction short-circuits: the LIKE over an INT column only
     runs for the final 9 rows, so 2000+ rows stream through cleanly
     before the error fires inside the third batch *)
  (match Starburst.run db "SELECT k FROM bt WHERE k > 2090 AND v LIKE 'x%'" with
  | _ -> Alcotest.fail "expected an exec error"
  | exception Starburst.Error e ->
    Alcotest.(check string) "stage" "exec"
      (Sb_resil.Err.stage_name e.Sb_resil.Err.err_stage);
    Alcotest.(check bool) "query attached" true (e.Sb_resil.Err.err_query <> None));
  (* the session survives a mid-batch failure *)
  Alcotest.(check int) "session intact" rows_total
    (List.length (q db "SELECT k FROM bt"))

let test_mid_statement_error_rolls_back () =
  let db = batch_db () in
  run db "CREATE TABLE sink (u INT NOT NULL UNIQUE)";
  (* k = 2099 maps onto 0, colliding with the first row: 2099 inserts
     succeed before the violation, and the implicit transaction must
     undo every one of them *)
  (match
     Starburst.run db
       "INSERT INTO sink SELECT CASE WHEN k = 2099 THEN 0 ELSE k END FROM bt"
   with
  | _ -> Alcotest.fail "expected a constraint violation"
  | exception Starburst.Error e ->
    Alcotest.(check string) "stage" "exec"
      (Sb_resil.Err.stage_name e.Sb_resil.Err.err_stage));
  check_bag "rolled back to empty" [ row [ i 0 ] ]
    (q db "SELECT count(*) FROM sink");
  (* and the table is still usable *)
  (match Starburst.run db "INSERT INTO sink SELECT k FROM bt WHERE k < 10" with
  | Starburst.Affected 10 -> ()
  | _ -> Alcotest.fail "insert after rollback");
  check_bag "clean insert lands" [ row [ i 10 ] ]
    (q db "SELECT count(*) FROM sink")

(* --- EXPLAIN ANALYZE actual rows under the batch engine --- *)

let test_explain_analyze_rows_vectorized () =
  let db = batch_db () in
  set_vec db true;
  let text = "SELECT a.k FROM bt a, bt b WHERE a.v = b.v AND a.k < 50" in
  let n = List.length (q db text) in
  Alcotest.(check int) "50 outer rows, 3 matches each" 150 n;
  let report =
    match Starburst.run db ("EXPLAIN ANALYZE " ^ text) with
    | Starburst.Message m -> m
    | _ -> Alcotest.fail "expected explain output"
  in
  let contains sub =
    let rec mem i =
      i + String.length sub <= String.length report
      && (String.sub report i (String.length sub) = sub || mem (i + 1))
    in
    mem 0
  in
  Alcotest.(check bool) "root actual rows exact" true
    (contains (Printf.sprintf "rows=%d" n));
  Alcotest.(check bool) "batch counts reported" true (contains "batches=")

let suite =
  ( "batch-engine",
    [
      case "empty inputs" test_empty_input;
      case "batches emptied by the filter" test_all_filtered_batches;
      case "LIMIT at the batch capacity" test_limit_at_batch_boundary;
      case "NULL join keys, hash and merge" test_null_join_keys;
      case "sort-merge ties across a batch boundary" test_merge_ties_at_batch_boundary;
      case "governor ceiling trips mid-batch" test_governor_ceiling_mid_batch;
      case "exec error mid-batch is structured" test_exec_error_mid_batch;
      case "mid-statement error rolls back" test_mid_statement_error_rolls_back;
      case "EXPLAIN ANALYZE rows under batches" test_explain_analyze_rows_vectorized;
    ] )
