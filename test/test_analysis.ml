(** Tests for the semantic-analysis layer ([lib/analysis]): the
    predicate prover against a fixture table of implication and
    satisfiability judgments (interval arithmetic, equality chains,
    three-valued NULL logic, undecidable cases), property inference over
    QGM (keys, nullability, row bounds, provable emptiness), totality on
    corrupted graphs, monotonicity of inferred facts across rewrite
    firings, the prover-backed lints, and inference-tightened optimizer
    estimates. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Qgm = Sb_qgm.Qgm
module Props = Sb_analysis.Props
module Prover = Sb_analysis.Prover
module Infer = Sb_analysis.Infer
module Lint = Sb_verify.Lint
module Rule = Sb_rewrite.Rule
module Engine = Sb_rewrite.Engine
module Rule_audit = Sb_verify.Rule_audit
module Generator = Sb_optimizer.Generator
module Plan = Sb_optimizer.Plan
open Test_util

(* --- expression shorthand for prover fixtures --- *)

let x = Qgm.Col (1, 0)
let y = Qgm.Col (2, 0)
let z = Qgm.Col (3, 0)
let n v = Qgm.Lit (Value.Int v)
let str v = Qgm.Lit (Value.String v)
let vnull = Qgm.Lit Value.Null
let eq a b = Qgm.Bin (Ast.Eq, a, b)
let neq a b = Qgm.Bin (Ast.Neq, a, b)
let lt a b = Qgm.Bin (Ast.Lt, a, b)
let le a b = Qgm.Bin (Ast.Le, a, b)
let gt a b = Qgm.Bin (Ast.Gt, a, b)
let ge a b = Qgm.Bin (Ast.Ge, a, b)
let add a b = Qgm.Bin (Ast.Add, a, b)
let not_ a = Qgm.Un (Ast.Not, a)
let isnull a = Qgm.Is_null a
let notnull a = not_ (isnull a)

let sat_t : Prover.sat Alcotest.testable =
  Alcotest.testable
    (fun ppf s -> Fmt.string ppf (Prover.sat_to_string s))
    ( = )

let verdict_t : Prover.verdict Alcotest.testable =
  Alcotest.testable
    (fun ppf v -> Fmt.string ppf (Prover.verdict_to_string v))
    ( = )

(* ------------------------------------------------------------------ *)
(* Prover: satisfiability judgments                                    *)
(* ------------------------------------------------------------------ *)

let test_satisfiability () =
  let open Prover in
  let table =
    [
      (* equality-class congruence against constants *)
      ("x=1", [ eq x (n 1) ], Satisfiable);
      ("x=1, x=2", [ eq x (n 1); eq x (n 2) ], Unsatisfiable);
      ("x=y, y=3, x>5", [ eq x y; eq y (n 3); gt x (n 5) ], Unsatisfiable);
      ("x=y, y=z, x<>z", [ eq x y; eq y z; neq x z ], Unsatisfiable);
      (* interval arithmetic (strict integer bounds tighten) *)
      ("x<5, x>10", [ lt x (n 5); gt x (n 10) ], Unsatisfiable);
      ("x>3, x<5", [ gt x (n 3); lt x (n 5) ], Satisfiable);
      ("x<=5, x>=5", [ le x (n 5); ge x (n 5) ], Satisfiable);
      ("1<=x<=3, x=2", [ ge x (n 1); le x (n 3); eq x (n 2) ], Satisfiable);
      ("1<=x<=3, x=4", [ ge x (n 1); le x (n 3); eq x (n 4) ], Unsatisfiable);
      ( "x>0, y>0, x+y<0",
        [ gt x (n 0); gt y (n 0); lt (add x y) (n 0) ],
        Unsatisfiable );
      (* negation: round two sees the bound learned in round one *)
      ("not(x>5), x>7", [ not_ (gt x (n 5)); gt x (n 7) ], Unsatisfiable);
      (* strings: strict bounds are kept closed (sound over-approx.)
         but point evaluation still refutes *)
      ("x='abc', x='abd'", [ eq x (str "abc"); eq x (str "abd") ], Unsatisfiable);
      ("x<'b', x='c'", [ lt x (str "b"); eq x (str "c") ], Unsatisfiable);
      ("x<'b', x='b'", [ lt x (str "b"); eq x (str "b") ], Unsatisfiable);
      (* three-valued NULL logic *)
      ("x is null, x is not null", [ isnull x; notnull x ], Unsatisfiable);
      ("x=1, x is null", [ eq x (n 1); isnull x ], Unsatisfiable);
      ("x=NULL", [ eq x vnull ], Unsatisfiable);
      (* x=x passing implies x NOT NULL; rows with x = 1 satisfy it *)
      ("x=x", [ eq x x ], Satisfiable);
      ("x not null, x=x", [ notnull x; eq x x ], Satisfiable);
      (* honestly undecidable -> unknown *)
      ("x>y", [ gt x y ], Sat_unknown);
      (* disequality tracking: x<>1 forced TRUE once x is in no class
         with the constant 1, so the refined env exhibits a witness *)
      ("x<>1", [ neq x (n 1) ], Satisfiable);
    ]
  in
  List.iter
    (fun (name, conjs, expected) ->
      Alcotest.check sat_t name expected (Prover.satisfiable conjs))
    table

(* ------------------------------------------------------------------ *)
(* Prover: implication judgments                                       *)
(* ------------------------------------------------------------------ *)

let test_implication () =
  let open Prover in
  let table =
    [
      ("x>5 => x>3", [ gt x (n 5) ], gt x (n 3), Proved);
      ("x>5 => x>=6", [ gt x (n 5) ], ge x (n 6), Proved);
      ("x=1 => x<=1", [ eq x (n 1) ], le x (n 1), Proved);
      ("x<5 => x<10", [ lt x (n 5) ], lt x (n 10), Proved);
      ("x<5 => x<3", [ lt x (n 5) ], lt x (n 3), Unknown);
      ("x=1 => x=2", [ eq x (n 1) ], eq x (n 2), Disproved);
      (* congruence chains *)
      ("x=y, y=3 => x=3", [ eq x y; eq y (n 3) ], eq x (n 3), Proved);
      ("x=y, y=z => x=z", [ eq x y; eq y z ], eq x z, Proved);
      ("x=y, y=3 => x>9", [ eq x y; eq y (n 3) ], gt x (n 9), Disproved);
      (* comparisons imply NOT NULL *)
      ("x>5 => x not null", [ gt x (n 5) ], notnull x, Proved);
      ("x is null => x=1", [ isnull x ], eq x (n 1), Disproved);
      (* unsatisfiable hypotheses prove anything (vacuous) *)
      ("x=1, x=2 => x=7", [ eq x (n 1); eq x (n 2) ], eq x (n 7), Proved);
      (* no hypotheses: constant folding *)
      ("[] => 1<2", [], lt (n 1) (n 2), Proved);
      (* flipped comparisons are outside the fragment -> Unknown *)
      ("x>=y => y<=x", [ ge x y ], le y x, Unknown);
    ]
  in
  List.iter
    (fun (name, hyps, concl, expected) ->
      Alcotest.check verdict_t name expected (Prover.implies hyps concl))
    table;
  (* box properties plumb through prop_of: a declared-range column *)
  let prop_of q i =
    if q = 1 && i = 0 then
      {
        Props.cp_nullable = false;
        cp_interval = Some { Props.lo = Some (Value.Int 0); hi = Some (Value.Int 10) };
      }
    else Props.top_col
  in
  Alcotest.check verdict_t "col in [0,10] => col >= 0" Prover.Proved
    (Prover.implies ~prop_of [] (ge x (n 0)));
  Alcotest.check verdict_t "col in [0,10] => col < 5 unknown" Prover.Unknown
    (Prover.implies ~prop_of [] (lt x (n 5)))

(* ------------------------------------------------------------------ *)
(* Prover: three-valued constant truth (the old Lint bug)              *)
(* ------------------------------------------------------------------ *)

let test_const_truth_3vl () =
  let t = Prover.const_truth in
  (* x = NULL never passes a WHERE: the two-valued folder let it escape *)
  Alcotest.(check (option bool)) "x = NULL" (Some false) (t (eq x vnull));
  Alcotest.(check (option bool)) "NULL = NULL" (Some false) (t (eq vnull vnull));
  (* NOT NULL is NULL, not TRUE: the old folder said Some true *)
  Alcotest.(check (option bool)) "NOT NULL" (Some false) (t (not_ vnull));
  Alcotest.(check (option bool)) "NULL IS NULL" (Some true) (t (isnull vnull));
  Alcotest.(check (option bool)) "1 = 1" (Some true) (t (eq (n 1) (n 1)));
  Alcotest.(check (option bool)) "1 = 2" (Some false) (t (eq (n 1) (n 2)));
  Alcotest.(check (option bool)) "opaque column" None (t (gt x (n 0)));
  (* OR with one true arm is true even if the other is NULL *)
  Alcotest.(check (option bool)) "TRUE OR NULL" (Some true)
    (t (Qgm.Bin (Ast.Or, Qgm.Lit (Value.Bool true), vnull)));
  (* AND with a NULL arm can never be TRUE *)
  Alcotest.(check (option bool)) "NULL AND TRUE" (Some false)
    (t (Qgm.Bin (Ast.And, vnull, Qgm.Lit (Value.Bool true))))

(* ------------------------------------------------------------------ *)
(* Inference over QGM                                                  *)
(* ------------------------------------------------------------------ *)

let build_g db text = Starburst.build_qgm db (Sb_hydrogen.Parser.query_text text)

let analyze ?(trust_stats = false) db text =
  let g = build_g db text in
  (g, Infer.analyze ~trust_stats ~catalog:db.Starburst.Corona.catalog g)

let top_props (g, inf) = Infer.box_props inf g.Qgm.top

let test_infer_keys_and_nulls () =
  let db = sample_db () in
  (* catalog UNIQUE surfaces as a key through a pass-through select *)
  let gp = analyze db "SELECT i.partno, i.onhand_qty FROM inventory i" in
  let p = top_props gp in
  Alcotest.(check bool) "unique column covers a key" true
    (Props.covers_key p [ 0 ]);
  Alcotest.(check bool) "non-key columns do not" false (Props.covers_key p [ 1 ]);
  Alcotest.(check bool) "declared NOT NULL survives" false
    p.Props.bp_cols.(0).Props.cp_nullable;
  Alcotest.(check bool) "nullable column stays nullable" true
    p.Props.bp_cols.(1).Props.cp_nullable;
  (* a key pinned by a constant proves a single row *)
  let p = top_props (analyze db "SELECT i.onhand_qty FROM inventory i WHERE i.partno = 2") in
  Alcotest.(check bool) "key = constant is single-row" true (Props.single_row p);
  (* DISTINCT makes the whole head a key *)
  let p = top_props (analyze db "SELECT DISTINCT q.supplier FROM quotations q") in
  Alcotest.(check bool) "DISTINCT head is a key" true (Props.covers_key p [ 0 ]);
  (* GROUP BY heads are a key *)
  let p =
    top_props
      (analyze db "SELECT q.supplier, count(*) FROM quotations q GROUP BY q.supplier")
  in
  Alcotest.(check bool) "grouping head is a key" true (Props.covers_key p [ 0 ]);
  Alcotest.(check bool) "aggregate column is not" false (Props.covers_key p [ 1 ])

let test_infer_emptiness_and_bounds () =
  let db = sample_db () in
  (* a contradictory WHERE proves the box empty *)
  let p =
    top_props
      (analyze db
         "SELECT q.partno FROM quotations q WHERE q.partno > 5 AND q.partno < 3")
  in
  Alcotest.(check bool) "contradiction proves empty" true p.Props.bp_empty;
  Alcotest.(check (option int)) "empty box bounds at zero" (Some 0)
    p.Props.bp_max_rows;
  (* a satisfiable WHERE does not *)
  let p =
    top_props (analyze db "SELECT q.partno FROM quotations q WHERE q.partno > 2")
  in
  Alcotest.(check bool) "satisfiable is not empty" false p.Props.bp_empty;
  (* trusted statistics bound GROUP BY output by the key range width:
     partno ranges over [1,4] after ANALYZE *)
  let p =
    top_props
      (analyze ~trust_stats:true db
         "SELECT q.partno, count(*) FROM quotations q GROUP BY q.partno")
  in
  (match p.Props.bp_max_rows with
  | Some b -> Alcotest.(check bool) (Fmt.str "group bound %d <= 4" b) true (b <= 4)
  | None -> Alcotest.fail "expected a row bound on the GROUP BY");
  (* without trusting statistics the interval is unknown, but the
     grouping input's cardinality cannot be proved either *)
  let p =
    top_props (analyze db "SELECT q.partno, count(*) FROM quotations q GROUP BY q.partno")
  in
  Alcotest.(check bool) "untrusted group key still a key" true
    (Props.covers_key p [ 0 ]);
  (* a grand aggregate is exactly one row, even over an empty input *)
  let p = top_props (analyze db "SELECT count(*) FROM quotations q") in
  Alcotest.(check bool) "grand aggregate is single-row" true (Props.single_row p)

(** Inference must be total on broken graphs — the corrupted-QGM
    fixtures from the verifier suite (dangling quantifiers, columns out
    of range) analyze to sound over-approximations, never exceptions. *)
let test_infer_total_on_corrupted () =
  let db = sample_db () in
  let catalog = db.Starburst.Corona.catalog in
  let fresh () = build_g db "SELECT partno FROM quotations" in
  let cases =
    [
      ( "dangling quantifier",
        fun g ->
          (List.hd (Qgm.top_box g).Qgm.b_head).Qgm.hc_expr
          <- Some (Qgm.Col (999, 0)) );
      ( "column out of range",
        fun g ->
          let top = Qgm.top_box g in
          (List.hd top.Qgm.b_head).Qgm.hc_expr
          <- Some (Qgm.Col ((List.hd top.Qgm.b_quants).Qgm.q_id, 99)) );
      ( "duplicate quantifier",
        fun g ->
          let top = Qgm.top_box g in
          top.Qgm.b_quants <- top.Qgm.b_quants @ [ List.hd top.Qgm.b_quants ] );
    ]
  in
  List.iter
    (fun (name, corrupt) ->
      let g = fresh () in
      corrupt g;
      match Infer.analyze ~catalog g with
      | inf ->
        let p = Infer.box_props inf g.Qgm.top in
        Alcotest.(check bool)
          (name ^ ": over-approximation, not a proof of emptiness")
          false p.Props.bp_empty
      | exception e ->
        Alcotest.failf "%s: inference raised %s" name (Printexc.to_string e))
    cases

(* ------------------------------------------------------------------ *)
(* Monotonicity across rewrite firings                                 *)
(* ------------------------------------------------------------------ *)

(** The inference audit compares inferred top-box facts before and after
    every firing: the stock rule set must not lose any on these
    queries.  A deliberately fact-destroying rule must be caught. *)
let test_monotone_across_rewrites () =
  let db = sample_db () in
  let catalog = db.Starburst.Corona.catalog in
  let audit_rewrite extra_rules text =
    let g = build_g db text in
    let lost = ref [] in
    let rules =
      Rule_audit.instrument_inference ~catalog
        ~on_regression:(fun m -> lost := m :: !lost)
        (Rule.all db.Starburst.Corona.rules @ extra_rules)
    in
    ignore (Engine.run ~rules g);
    !lost
  in
  List.iter
    (fun text ->
      Alcotest.(check (list string))
        (Fmt.str "no facts lost rewriting %S" text)
        [] (audit_rewrite [] text))
    [
      "SELECT q.partno FROM quotations q WHERE q.partno IN (SELECT partno \
       FROM inventory)";
      "SELECT DISTINCT i.partno FROM inventory i WHERE i.partno > 1";
      "SELECT q.partno, q.price FROM quotations q, inventory i WHERE \
       q.partno = i.partno AND i.type = 'CPU'";
    ];
  (* a rule that strips DISTINCT (losing the whole-head key) is caught *)
  let fact_smasher =
    Rule.make ~priority:1 ~name:"fact_smasher" ~rule_class:"test"
      ~condition:(fun ctx -> ctx.Rule.box.Qgm.b_distinct)
      ~action:(fun ctx -> ctx.Rule.box.Qgm.b_distinct <- false)
      ()
  in
  let lost =
    audit_rewrite [ fact_smasher ] "SELECT DISTINCT q.supplier FROM quotations q"
  in
  Alcotest.(check bool) "regression reported" true (lost <> []);
  Alcotest.(check bool) "attributed to the rule" true
    (List.exists
       (fun m ->
         let len = String.length "fact_smasher" in
         String.length m >= len && String.sub m 0 len = "fact_smasher")
       lost)

(* ------------------------------------------------------------------ *)
(* Prover-backed lints                                                 *)
(* ------------------------------------------------------------------ *)

let lint_codes db text =
  List.map
    (fun d -> d.Lint.d_code)
    (Lint.lint_qgm ~catalog:db.Starburst.Corona.catalog (build_g db text))

let test_lint_contradictory_pred () =
  let db = sample_db () in
  Alcotest.(check bool) "interval contradiction flagged" true
    (List.mem "contradictory-pred"
       (lint_codes db
          "SELECT q.partno FROM quotations q WHERE q.partno > 5 AND q.partno < 3"));
  Alcotest.(check bool) "equality contradiction flagged" true
    (List.mem "contradictory-pred"
       (lint_codes db
          "SELECT q.partno FROM quotations q WHERE q.partno = 1 AND q.partno = 2"));
  (* satisfiable conjunctions stay quiet *)
  Alcotest.(check bool) "satisfiable WHERE is clean" false
    (List.mem "contradictory-pred"
       (lint_codes db
          "SELECT q.partno FROM quotations q WHERE q.partno > 1 AND q.partno < 4"))

let test_lint_implied_pred () =
  let db = sample_db () in
  Alcotest.(check bool) "x>5 makes x>3 redundant" true
    (List.mem "implied-pred"
       (lint_codes db
          "SELECT q.partno FROM quotations q WHERE q.partno > 5 AND q.partno > 3"));
  Alcotest.(check bool) "equality chain makes a copy redundant" true
    (List.mem "implied-pred"
       (lint_codes db
          "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = \
           i.partno AND q.partno = 2 AND i.partno = 2"));
  Alcotest.(check bool) "independent conjuncts are clean" false
    (List.mem "implied-pred"
       (lint_codes db
          "SELECT q.partno FROM quotations q WHERE q.partno > 1 AND q.price > 5.0"))

let test_lint_null_join_key () =
  let db = sample_db () in
  (* emp.dept and edges.src are both nullable *)
  Alcotest.(check bool) "nullable = nullable join flagged" true
    (List.mem "null-join-key"
       (lint_codes db "SELECT e.eid FROM emp e, edges g WHERE e.dept = g.src"));
  (* an IS NOT NULL guard silences it *)
  Alcotest.(check bool) "guarded join is clean" false
    (List.mem "null-join-key"
       (lint_codes db
          "SELECT e.eid FROM emp e, edges g WHERE e.dept = g.src AND e.dept \
           IS NOT NULL AND g.src IS NOT NULL"));
  (* NOT NULL columns never fire it *)
  Alcotest.(check bool) "NOT NULL join is clean" false
    (List.mem "null-join-key"
       (lint_codes db
          "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = \
           i.partno"))

(** The redundant conjunct showcased in [examples/quickstart.ml]'s
    Analysis section must keep firing the lint. *)
let test_lint_examples_query () =
  let db = sample_db () in
  Alcotest.(check bool) "examples/ query fires implied-pred" true
    (List.mem "implied-pred"
       (lint_codes db
          "SELECT partno, price FROM quotations WHERE partno = 1 AND partno >= 1"))

(* ------------------------------------------------------------------ *)
(* Optimizer integration: inference-tightened estimates                *)
(* ------------------------------------------------------------------ *)

let test_optimizer_tighter_estimates () =
  let db = sample_db () in
  (* two UNIQUE-keyed 30-row tables created after the sample ANALYZE, so
     the estimator sees no statistics and must fall back on default
     selectivities — the semantic analysis still proves the pinned keys
     make each side (and hence the join) a single row *)
  let run s = ignore (Starburst.run db s) in
  run "CREATE TABLE big_q (partno INT NOT NULL UNIQUE, price FLOAT)";
  run "CREATE TABLE big_i (partno INT NOT NULL UNIQUE, onhand INT)";
  run
    ("INSERT INTO big_q VALUES "
    ^ String.concat ","
        (List.init 30 (fun i -> Fmt.str "(%d, %d.0)" (i + 1) (i * 10))));
  run
    ("INSERT INTO big_i VALUES "
    ^ String.concat ","
        (List.init 30 (fun i -> Fmt.str "(%d, %d)" (i + 1) (i * 10))));
  let opt = db.Starburst.Corona.optimizer in
  let text =
    "SELECT q.price, i.onhand FROM big_q q, big_i i WHERE q.partno = \
     i.partno AND i.partno >= 7 AND i.partno <= 7"
  in
  let card use =
    opt.Generator.use_analysis <- use;
    let plan = Generator.optimize opt (build_g db text) in
    plan.Plan.props.Plan.p_card
  in
  let without = card false in
  let with_inference = card true in
  opt.Generator.use_analysis <- true;
  Alcotest.(check bool)
    (Fmt.str "inference tightens the estimate (%.1f < %.1f)" with_inference
       without)
    true
    (with_inference < without);
  (* the derived key feeding the estimate is visible in the analysis *)
  (match opt.Generator.analysis with
  | Some inf ->
    let g = build_g db text in
    ignore g;
    Alcotest.(check bool) "inference ran" true (Infer.fact_count inf > 0)
  | None -> Alcotest.fail "optimizer retained no analysis");
  Alcotest.(check bool) "inference time was recorded" true
    (opt.Generator.analysis_secs >= 0.0);
  (* EXPLAIN ANALYSIS surfaces the inferred key and the tightened plan *)
  match Starburst.run db ("EXPLAIN ANALYSIS " ^ text) with
  | Starburst.Corona.Message s ->
    let contains sub =
      let ns = String.length sub in
      let rec go i =
        i + ns <= String.length s && (String.sub s i ns = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "analysis section present" true
      (contains "== ANALYSIS");
    Alcotest.(check bool) "an inferred key is shown" true (contains "keys: (");
    Alcotest.(check bool) "plan section present" true
      (contains "inference-tightened")
  | _ -> Alcotest.fail "EXPLAIN ANALYSIS did not return a message"

let test_explain_analysis_parses () =
  match Sb_hydrogen.Parser.statement "EXPLAIN ANALYSIS SELECT src FROM edges" with
  | Ast.Stmt_explain (Ast.Explain_analysis, _) as stmt ->
    let s = Sb_hydrogen.Pretty.statement_to_string stmt in
    let contains sub str =
      let ns = String.length sub in
      let rec go i =
        i + ns <= String.length str && (String.sub str i ns = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "pretty-prints back" true
      (contains "EXPLAIN ANALYSIS" s)
  | _ -> Alcotest.fail "EXPLAIN ANALYSIS did not parse"

let suite =
  ( "analysis",
    [
      case "prover satisfiability table" test_satisfiability;
      case "prover implication table" test_implication;
      case "three-valued constant truth" test_const_truth_3vl;
      case "inferred keys and nullability" test_infer_keys_and_nulls;
      case "inferred emptiness and row bounds" test_infer_emptiness_and_bounds;
      case "inference total on corrupted QGM" test_infer_total_on_corrupted;
      case "facts monotone across rewrites" test_monotone_across_rewrites;
      case "lint: contradictory-pred" test_lint_contradictory_pred;
      case "lint: implied-pred" test_lint_implied_pred;
      case "lint: null-join-key" test_lint_null_join_key;
      case "lint: examples query" test_lint_examples_query;
      case "optimizer uses inference" test_optimizer_tighter_estimates;
      case "EXPLAIN ANALYSIS parses" test_explain_analysis_parses;
    ] )
