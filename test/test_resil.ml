(** Resilience tests: the limit taxonomy and governor (finite
    intermediate-row default, pinned breach messages, deadline on a fake
    clock, session usability after a breach), the zero-budget rewrite
    contract, deterministic fault injection with retries and metrics,
    graceful degradation (broken rule, blown plan-node budget) surfaced
    by EXPLAIN, and a seeded chaos table over the whole pipeline. *)

open Test_util
module Err = Sb_resil.Err
module Limits = Sb_resil.Limits
module Faults = Sb_resil.Faults
module Qgm = Sb_qgm.Qgm
module Check = Sb_qgm.Check
module Engine = Sb_rewrite.Engine
module Rule = Sb_rewrite.Rule

(* --- limits ------------------------------------------------------- *)

let test_default_limits () =
  let l = Limits.default () in
  Alcotest.(check int)
    "intermediate rows default is finite" 10_000_000 l.Limits.max_intermediate_rows;
  Alcotest.(check int) "output rows unlimited" 0 l.Limits.max_output_rows;
  Alcotest.(check int) "operator calls unlimited" 0 l.Limits.max_operator_calls;
  Alcotest.(check int) "no deadline" 0 l.Limits.deadline_ms;
  Alcotest.(check int) "plan nodes unlimited" 0 l.Limits.max_plan_nodes;
  let u = Limits.unlimited () in
  Alcotest.(check int) "unlimited intermediate" 0 u.Limits.max_intermediate_rows

let test_set_by_name () =
  let l = Limits.unlimited () in
  Alcotest.(check bool) "limit_ prefix accepted" true
    (Limits.set l "limit_output_rows" 5 = Ok ());
  Alcotest.(check int) "value stored" 5 l.Limits.max_output_rows;
  Alcotest.(check bool) "max_ prefix accepted" true
    (Limits.set l "max_deadline_ms" 100 = Ok ());
  Alcotest.(check int) "deadline stored" 100 l.Limits.deadline_ms;
  Alcotest.(check bool) "bare name accepted" true
    (Limits.set l "plan_nodes" 7 = Ok ());
  Alcotest.(check bool) "unknown name rejected" true
    (match Limits.set l "bogus" 1 with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "negative value rejected" true
    (match Limits.set l "output_rows" (-1) with Error _ -> true | Ok () -> false)

(* the pinned breach-message format: "limit max_<name> exceeded (<n>)" *)
let expect_resource_error ~msg db text =
  match Starburst.run db text with
  | _ -> Alcotest.failf "expected a resource error for: %s" text
  | exception Starburst.Error e ->
    Alcotest.(check string) "stage" "resource" (Err.stage_name e.Err.err_stage);
    Alcotest.(check string) "message" msg e.Err.err_msg
  | exception e ->
    Alcotest.failf "expected Starburst.Error, got %s" (Printexc.to_string e)

let test_intermediate_row_limit () =
  let db = sample_db () in
  ignore (Starburst.run db "SET limit_intermediate_rows = 100");
  expect_resource_error ~msg:"limit max_intermediate_rows exceeded (100)" db
    "SELECT q1.partno FROM quotations q1, quotations q2, quotations q3, \
     quotations q4";
  (* the breach left the session usable *)
  ignore (Starburst.run db "SET limit_intermediate_rows = 0");
  Alcotest.(check int) "session usable after breach" 4
    (List.length (q db "SELECT partno FROM inventory"))

let test_output_row_limit () =
  let db = sample_db () in
  ignore (Starburst.run db "SET limit_output_rows = 2");
  expect_resource_error ~msg:"limit max_output_rows exceeded (2)" db
    "SELECT partno FROM inventory";
  Alcotest.(check int) "small results still fit" 1
    (List.length (q db "SELECT partno FROM inventory WHERE partno = 1"))

let test_operator_call_limit () =
  let db = sample_db () in
  ignore (Starburst.run db "SET limit_operator_calls = 1");
  expect_resource_error ~msg:"limit max_operator_calls exceeded (1)" db
    "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = i.partno"

let test_deadline_fake_clock () =
  let l = Limits.unlimited () in
  l.Limits.deadline_ms <- 5;
  let now = ref 0L in
  let gov = Limits.start ~now:(fun () -> !now) l in
  Limits.check_deadline gov;
  (* 4 ms in: still fine *)
  now := 4_000_000L;
  Limits.charge_op gov;
  (* 6 ms in: over budget *)
  now := 6_000_000L;
  (match Limits.check_deadline gov with
  | () -> Alcotest.fail "deadline should have expired"
  | exception Err.Error e ->
    Alcotest.(check string) "stage" "resource" (Err.stage_name e.Err.err_stage);
    Alcotest.(check string) "message" "limit deadline_ms exceeded (5)"
      e.Err.err_msg);
  Alcotest.(check bool) "elapsed tracks the fake clock" true
    (Limits.elapsed_ns gov = 6_000_000L)

let test_consumption () =
  let l = Limits.unlimited () in
  l.Limits.max_output_rows <- 10;
  let gov = Limits.start ~now:(fun () -> 0L) l in
  Limits.charge_row gov;
  Limits.charge_row gov;
  Limits.charge_output gov;
  Limits.charge_plan_nodes gov 3;
  let find name =
    let name', used, limit =
      List.find (fun (n, _, _) -> n = name) (Limits.consumption gov)
    in
    ignore name';
    (used, limit)
  in
  Alcotest.(check (pair int int)) "intermediate rows" (2, 0)
    (find "intermediate_rows");
  Alcotest.(check (pair int int)) "output rows" (1, 10) (find "output_rows");
  Alcotest.(check (pair int int)) "plan nodes" (3, 0) (find "plan_nodes")

(* --- zero rewrite budget ------------------------------------------ *)

let test_zero_budget_untouched_qgm () =
  let db = sample_db () in
  let wq =
    Starburst.parse db
      "SELECT q.partno FROM quotations q WHERE q.partno IN (SELECT partno \
       FROM inventory WHERE type = 'CPU')"
  in
  let g = Starburst.build_qgm db wq in
  let boxes_before = Hashtbl.length g.Qgm.boxes in
  let stats =
    Engine.run ~budget:0 ~rules:(Rule.all db.Starburst.Corona.rules) g
  in
  Alcotest.(check bool) "budget exhausted" true stats.Engine.budget_exhausted;
  Alcotest.(check int) "nothing fired" 0 stats.Engine.rules_fired;
  Alcotest.(check int) "nothing examined" 0 stats.Engine.rules_examined;
  Alcotest.(check int) "box count unchanged" boxes_before
    (Hashtbl.length g.Qgm.boxes);
  Alcotest.(check (list string)) "QGM still consistent" [] (Check.check g)

(* --- fault injection ---------------------------------------------- *)

let test_fail_nth_retries () =
  let faults = Faults.create ~seed:1 () in
  Faults.fail_nth faults ~site:"x" [ 2 ];
  let calls = ref 0 in
  let f () = incr calls in
  Faults.guard faults ~site:"x" f;
  (* consult #1: clean *)
  Faults.guard faults ~site:"x" f;
  (* consult #2 faults, #3 retries clean *)
  Alcotest.(check int) "f ran on both guard calls" 2 !calls;
  Alcotest.(check int) "one fault injected" 1 (Faults.injected faults);
  Alcotest.(check int) "one retry" 1 (Faults.retried faults);
  Alcotest.(check bool) "virtual clock advanced, nothing slept" true
    (Faults.vclock_ns faults > 0L)

let test_permanent_fault () =
  let faults = Faults.create () in
  Faults.fail_nth faults ~outcome:Faults.Permanent ~site:"y" [ 1 ];
  match Faults.guard faults ~site:"y" (fun () -> ()) with
  | () -> Alcotest.fail "permanent fault should raise"
  | exception Err.Error e ->
    Alcotest.(check string) "stage" "storage" (Err.stage_name e.Err.err_stage);
    Alcotest.(check bool) "not retryable" false e.Err.err_retryable;
    Alcotest.(check int) "no retries for permanent faults" 0
      (Faults.retried faults)

let test_transient_fault_exhausts_retries () =
  let faults = Faults.create ~max_retries:2 () in
  Faults.fail_nth faults ~site:"z" [ 1; 2; 3 ];
  match Faults.guard faults ~site:"z" (fun () -> ()) with
  | () -> Alcotest.fail "persistent transient fault should raise"
  | exception Err.Error e ->
    Alcotest.(check string) "stage" "storage" (Err.stage_name e.Err.err_stage);
    Alcotest.(check bool) "retryable" true e.Err.err_retryable;
    Alcotest.(check int) "both retries consumed" 2 (Faults.retried faults)

let test_fault_metrics () =
  let faults = Faults.create () in
  let metrics = Sb_obs.Metrics.create () in
  Faults.set_metrics faults metrics;
  Faults.fail_nth faults ~site:"m" [ 1 ];
  Faults.guard faults ~site:"m" (fun () -> ());
  let dump = Sb_obs.Metrics.dump metrics in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "injection counter in dump" true
    (contains "sb_faults_injected_total" dump);
  Alcotest.(check bool) "retry counter in dump" true
    (contains "sb_fault_retries_total" dump)

let test_storage_fault_recovered () =
  let db = sample_db () in
  let faults = Faults.create ~seed:3 () in
  Faults.fail_nth faults ~site:"catalog.lookup" [ 1 ];
  Faults.fail_nth faults ~site:"heap.page" [ 1 ];
  Starburst.Corona.set_faults db faults;
  Alcotest.(check int) "query survives injected transient faults" 4
    (List.length (q db "SELECT partno FROM inventory"));
  Alcotest.(check bool) "faults were actually injected" true
    (Faults.injected faults >= 1);
  Starburst.Corona.set_faults db Faults.none

(* --- graceful degradation ----------------------------------------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_rewrite_degradation () =
  let db = sample_db () in
  Rule.add db.Starburst.Corona.rules
    (Rule.make ~name:"broken_rule" ~rule_class:"test"
       ~condition:(fun _ -> true)
       ~action:(fun _ -> failwith "boom")
       ());
  let rows =
    q db
      "SELECT q.partno FROM quotations q WHERE q.partno IN (SELECT partno \
       FROM inventory WHERE type = 'CPU')"
  in
  Alcotest.(check int) "query still answered from the canonical QGM" 4
    (List.length rows);
  (match Starburst.Corona.last_degraded db with
  | Some reason ->
    Alcotest.(check bool) "reason names the rewrite failure" true
      (contains "rewrite failed" reason && contains "boom" reason)
  | None -> Alcotest.fail "expected a degradation record");
  match Starburst.run db "EXPLAIN SELECT partno FROM inventory WHERE type = 'CPU'" with
  | Starburst.Message s ->
    Alcotest.(check bool) "EXPLAIN shows the degradation" true
      (contains "degraded: rewrite failed" s)
  | _ -> Alcotest.fail "EXPLAIN should return a message"

let test_plan_budget_degradation () =
  let db = sample_db () in
  ignore (Starburst.run db "SET limit_plan_nodes = 1");
  let rows =
    q db
      "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = \
       i.partno"
  in
  Alcotest.(check int) "query answered by the greedy fallback" 5
    (List.length rows);
  match Starburst.Corona.last_degraded db with
  | Some reason ->
    Alcotest.(check bool) "reason names the blown plan budget" true
      (contains "optimize failed" reason && contains "max_plan_nodes" reason)
  | None -> Alcotest.fail "expected a degradation record"

(* --- chaos table --------------------------------------------------- *)

let chaos_corpus =
  [
    "SELECT q.partno, q.price FROM quotations q WHERE q.partno IN (SELECT \
     partno FROM inventory WHERE type = 'CPU') AND q.price < 50";
    "SELECT i.type, count(*) FROM quotations q, inventory i WHERE q.partno = \
     i.partno GROUP BY i.type";
    "SELECT partno FROM inventory UNION SELECT partno FROM quotations";
    "SELECT partno FROM quotations WHERE price > (SELECT min(price) FROM \
     quotations) ORDER BY partno";
  ]

let test_chaos_table () =
  (* the 20 fault seeds are drawn from the fuzzer's splittable PRNG
     under one pinned root seed, the same stream discipline the fuzz
     harness uses, so this table and `fuzz_main --seed` share one
     reproducibility story *)
  let root = Sb_fuzz.Sprng.create 42 in
  let seeds =
    List.init 20 (fun _ -> 1 + Sb_fuzz.Sprng.int (Sb_fuzz.Sprng.split root) 999_983)
  in
  List.iter (fun seed ->
    let db = sample_db () in
    db.Starburst.Corona.paranoid <- true;
    let faults = Faults.create ~seed () in
    Faults.fail_prob faults 0.05;
    Starburst.Corona.set_faults db faults;
    List.iter
      (fun text ->
        match Starburst.run db text with
        | _ -> ()
        | exception Starburst.Error _ -> () (* structured failure is fine *)
        | exception e ->
          Alcotest.failf "seed %d: unstructured exception %s for %s" seed
            (Printexc.to_string e) text)
      chaos_corpus;
    (* the session must stay usable once the faults are lifted *)
    Starburst.Corona.set_faults db Faults.none;
    db.Starburst.Corona.paranoid <- false;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: sanity query after chaos" seed)
      4
      (List.length (q db "SELECT partno FROM inventory")))
    seeds

(* --- structured boundary errors ------------------------------------ *)

let test_error_classification () =
  let db = sample_db () in
  let stage_of text =
    match Starburst.run db text with
    | _ -> Alcotest.failf "expected an error for: %s" text
    | exception Starburst.Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "query text attached for %s" text)
        true
        (e.Err.err_query = Some text);
      Err.stage_name e.Err.err_stage
    | exception e ->
      Alcotest.failf "expected Starburst.Error for %s, got %s" text
        (Printexc.to_string e)
  in
  Alcotest.(check string) "parse failures" "parse"
    (stage_of "SELEKT 1 FROM inventory");
  Alcotest.(check string) "semantic failures" "semantic"
    (stage_of "SELECT nope FROM inventory");
  Alcotest.(check string) "unknown table" "semantic"
    (stage_of "SELECT x FROM no_such_table");
  Alcotest.(check string) "execution failures" "exec"
    (stage_of
       "SELECT partno FROM inventory WHERE onhand_qty = (SELECT partno FROM \
        quotations)")

let suite =
  ( "resil",
    [
      case "default limits: finite intermediate rows" test_default_limits;
      case "set limits by name" test_set_by_name;
      case "intermediate-row limit breach (pinned message)"
        test_intermediate_row_limit;
      case "output-row limit breach" test_output_row_limit;
      case "operator-call limit breach" test_operator_call_limit;
      case "deadline on a fake clock" test_deadline_fake_clock;
      case "governor consumption report" test_consumption;
      case "zero rewrite budget leaves QGM untouched"
        test_zero_budget_untouched_qgm;
      case "fail_nth injects and retries" test_fail_nth_retries;
      case "permanent faults do not retry" test_permanent_fault;
      case "transient fault exhausts retries" test_transient_fault_exhausts_retries;
      case "fault counters reach metrics" test_fault_metrics;
      case "storage faults recovered end to end" test_storage_fault_recovered;
      case "rewrite failure degrades to canonical plan" test_rewrite_degradation;
      case "blown plan budget degrades to greedy" test_plan_budget_degradation;
      case "chaos table: 20 seeds, 5% storage faults" test_chaos_table;
      case "boundary errors are classified by stage" test_error_classification;
    ] )
