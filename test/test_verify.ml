(** Tests for the static-analysis layer ([lib/verify]): the plan
    validator against a table of deliberately corrupted plans, the
    extended QGM checks against corrupted graphs, the rewrite-rule
    soundness harness (instrumentation and differential execution), and
    the linter. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Qgm = Sb_qgm.Qgm
module Check = Sb_qgm.Check
module Rule = Sb_rewrite.Rule
module Engine = Sb_rewrite.Engine
module Plan = Sb_optimizer.Plan
module Plan_check = Sb_verify.Plan_check
module Rule_audit = Sb_verify.Rule_audit
module Lint = Sb_verify.Lint
open Test_util

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Plan_check                                                          *)
(* ------------------------------------------------------------------ *)

let props ?(slots = 1) ?(order = []) ?(site = "local") ?(cost = 1.0)
    ?(card = 1.0) () =
  {
    Plan.p_quants = [];
    p_slots = Array.make slots (-1, 0);
    p_order = order;
    p_site = site;
    p_distinct = false;
    p_cost = cost;
    p_card = card;
  }

let scan ?(table = "quotations") ?(cols = [ 0 ]) ?(preds = []) ?props:pr () =
  {
    Plan.op = Plan.Scan { sc_table = table; sc_cols = cols; sc_preds = preds };
    inputs = [];
    props = (match pr with Some p -> p | None -> props ~slots:(List.length cols) ());
  }

let with_props (p : Plan.plan) f = { p with Plan.props = f p.Plan.props }

let mk_join ?(j_method = Plan.Nested_loop) ?(order = []) outer inner =
  {
    Plan.op =
      Plan.Join
        {
          j_method;
          j_kind = Plan.J_regular;
          j_equi = [ (0, 0) ];
          j_pred = None;
          j_corr = [];
          j_bound = false;
          j_kind_pred = None;
        };
    inputs = [ outer; inner ];
    props =
      {
        (props ~slots:2 ()) with
        Plan.p_order = order;
        p_site = outer.Plan.props.Plan.p_site;
      };
  }

let codes vs = List.map (fun v -> v.Plan_check.v_code) vs

let expect_code name code plan =
  let vs = Plan_check.check plan in
  if not (List.mem code (codes vs)) then
    Alcotest.failf "%s: expected violation [%s], got [%s]" name code
      (String.concat "; " (List.map Plan_check.violation_to_string vs))

(** The table of deliberately corrupted plans, each asserting exactly
    the expected violation code. *)
let test_corrupted_plans () =
  let ok = scan () in
  let cases =
    [
      ("negative cost", "cost", with_props ok (fun p -> { p with Plan.p_cost = -1.0 }));
      ("nan cardinality", "card", with_props ok (fun p -> { p with Plan.p_card = Float.nan }));
      ( "claimed order slot out of range",
        "order-slot",
        with_props ok (fun p -> { p with Plan.p_order = [ (99, Ast.Asc) ] }) );
      ( "filter slot out of range",
        "slot-ref",
        { Plan.op = Plan.Filter [ Plan.RCol 99 ]; inputs = [ ok ]; props = props () } );
      ( "correlation parameter at top level",
        "param",
        { Plan.op = Plan.Filter [ Plan.RParam 0 ]; inputs = [ ok ]; props = props () } );
      ( "project arity vs claimed width",
        "width",
        { Plan.op = Plan.Project [ Plan.RCol 0 ]; inputs = [ ok ]; props = props ~slots:2 () } );
      ( "merge join without sorted inputs",
        "merge-order",
        mk_join ~j_method:Plan.Sort_merge (scan ()) (scan ()) );
      ( "hash join claiming an order",
        "order-claim",
        mk_join ~j_method:Plan.Hash_join ~order:[ (0, Ast.Asc) ] (scan ()) (scan ()) );
      ( "join inputs at different sites",
        "site",
        mk_join (scan ()) (scan ~props:(props ~site:"tokyo" ()) ()) );
      ( "SHIP claiming the wrong site",
        "site",
        { Plan.op = Plan.Ship "tokyo"; inputs = [ ok ]; props = props ~site:"local" () } );
      ( "sort claiming an order it does not establish",
        "order-claim",
        { Plan.op = Plan.Sort [ (0, Ast.Asc) ]; inputs = [ ok ]; props = props () } );
      ( "set-op over mismatched widths",
        "setop-width",
        {
          Plan.op = Plan.Union_all;
          inputs = [ scan (); scan ~cols:[ 0; 1 ] () ];
          props = props ();
        } );
      ( "sort with no input",
        "inputs",
        { Plan.op = Plan.Sort [ (0, Ast.Asc) ]; inputs = []; props = props () } );
      ( "recursion delta outside a fixpoint",
        "rec-delta",
        { Plan.op = Plan.Rec_delta { rd_width = 1 }; inputs = []; props = props () } );
      ( "streamed group over unsorted input",
        "merge-order",
        {
          Plan.op = Plan.Group { g_keys = [ 0 ]; g_aggs = []; g_sorted = true };
          inputs = [ ok ];
          props = props ();
        } );
    ]
  in
  Alcotest.(check (list string)) "pristine scan is valid" [] (codes (Plan_check.check ok));
  List.iter (fun (name, code, plan) -> expect_code name code plan) cases

let test_plan_check_catalog () =
  let db = sample_db () in
  let catalog = db.Starburst.Corona.catalog in
  let bad_table = scan ~table:"nowhere" () in
  Alcotest.(check bool) "unknown table flagged" true
    (List.mem "table" (codes (Plan_check.check ~catalog bad_table)));
  let bad_col = scan ~cols:[ 99 ] () in
  Alcotest.(check bool) "bad base column flagged" true
    (List.mem "column" (codes (Plan_check.check ~catalog bad_col)));
  (* scan predicates are evaluated over the full base row: quotations
     has arity 4, so base column 3 is legal in a predicate even though
     only column 0 is kept *)
  let pred_ok =
    scan ~preds:[ Plan.RBin (Ast.Gt, Plan.RCol 3, Plan.RLit (Value.Int 0)) ] ()
  in
  Alcotest.(check (list string)) "base-row predicate ok" []
    (codes (Plan_check.check ~catalog pred_ok));
  let pred_bad =
    scan ~preds:[ Plan.RBin (Ast.Gt, Plan.RCol 9, Plan.RLit (Value.Int 0)) ] ()
  in
  Alcotest.(check bool) "predicate past base arity flagged" true
    (List.mem "slot-ref" (codes (Plan_check.check ~catalog pred_bad)))

(** Every plan the optimizer actually produces passes the validator —
    the positive control for the whole fixture table. *)
let test_real_plans_are_valid () =
  let db = sample_db () in
  let catalog = db.Starburst.Corona.catalog in
  List.iter
    (fun text ->
      let plan = Starburst.compile_text db text in
      match Plan_check.check ~catalog plan with
      | [] -> ()
      | vs ->
        Alcotest.failf "plan for %S: %s" text
          (String.concat "; " (List.map Plan_check.violation_to_string vs)))
    [
      "SELECT partno FROM quotations WHERE price < 20";
      "SELECT q.partno, i.type FROM quotations q, inventory i WHERE q.partno = i.partno";
      "SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM \
       inventory WHERE type = 'CPU') ORDER BY partno";
      "SELECT supplier, count(*), min(price) FROM quotations GROUP BY supplier";
      "SELECT partno FROM inventory UNION SELECT partno FROM quotations";
      "SELECT DISTINCT supplier FROM quotations ORDER BY supplier DESC LIMIT 2";
    ]

(* ------------------------------------------------------------------ *)
(* Qgm.Check extensions                                                *)
(* ------------------------------------------------------------------ *)

let build_g db text = Starburst.build_qgm db (Sb_hydrogen.Parser.query_text text)

let expect_violation name sub g =
  let vs = Check.check g in
  if not (List.exists (contains sub) vs) then
    Alcotest.failf "%s: expected a violation mentioning %S, got [%s]" name sub
      (String.concat "; " vs)

let test_corrupted_qgm () =
  let db = sample_db () in
  (* dangling quantifier *)
  let g = build_g db "SELECT partno FROM quotations" in
  (List.hd (Qgm.top_box g).Qgm.b_head).Qgm.hc_expr <- Some (Qgm.Col (999, 0));
  expect_violation "dangling quantifier" "missing quantifier" g;
  (* column out of range *)
  let g = build_g db "SELECT partno FROM quotations" in
  let top = Qgm.top_box g in
  (List.hd top.Qgm.b_head).Qgm.hc_expr <-
    Some (Qgm.Col ((List.hd top.Qgm.b_quants).Qgm.q_id, 99));
  expect_violation "column out of range" "out of range" g;
  (* duplicate quantifier id within a box *)
  let g = build_g db "SELECT partno FROM quotations" in
  let top = Qgm.top_box g in
  top.Qgm.b_quants <- top.Qgm.b_quants @ [ List.hd top.Qgm.b_quants ];
  expect_violation "duplicate quantifier id" "duplicate quantifier id" g;
  (* qualifier edge into an unrelated box: the top box referencing a
     quantifier that lives inside the subquery box *)
  let g =
    build_g db
      "SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM inventory)"
  in
  let top = Qgm.top_box g in
  let sub_box =
    List.find
      (fun (b : Qgm.box) ->
        b.Qgm.b_id <> top.Qgm.b_id && b.Qgm.b_kind = Qgm.Select)
      (Qgm.reachable_boxes g)
  in
  let inner_quant = List.hd sub_box.Qgm.b_quants in
  top.Qgm.b_preds <-
    top.Qgm.b_preds
    @ [ Qgm.pred
          (Qgm.Bin (Ast.Gt, Qgm.Col (inner_quant.Qgm.q_id, 0), Qgm.Lit (Value.Int 0)))
      ];
  expect_violation "unrelated quantifier reference" "unrelated box" g;
  (* empty head in a setformer box *)
  let g = build_g db "SELECT partno FROM quotations" in
  (Qgm.top_box g).Qgm.b_head <- [];
  expect_violation "empty head" "empty head in a setformer box" g

let test_violations_name_the_box () =
  let db = sample_db () in
  let g = build_g db "SELECT partno FROM quotations" in
  let top = Qgm.top_box g in
  (List.hd top.Qgm.b_head).Qgm.hc_expr <- Some (Qgm.Col (999, 0));
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "violation names its box: %s" v)
        true
        (contains (Fmt.str "box %d" top.Qgm.b_id) v))
    (Check.check g);
  (* dot rendering carries the numeric box id *)
  let g = build_g db "SELECT partno FROM quotations" in
  Alcotest.(check bool) "dot labels carry box ids" true
    (contains
       (Fmt.str "{%d: " (Qgm.top_box g).Qgm.b_id)
       (Sb_qgm.Print.to_dot g))

(* ------------------------------------------------------------------ *)
(* Rule_audit                                                          *)
(* ------------------------------------------------------------------ *)

let test_compare_results () =
  let a = [ row [ i 1; s "x" ]; row [ i 2; s "y" ] ] in
  let shuffled = [ row [ i 2; s "y" ]; row [ i 1; s "x" ] ] in
  Alcotest.(check bool) "equal bags, any order" true
    (Rule_audit.compare_results a shuffled = Ok ());
  (match Rule_audit.compare_results a [ row [ i 1; s "x" ] ] with
  | Error msg ->
    Alcotest.(check bool) "reports the lost row" true (contains "lost" msg)
  | Ok () -> Alcotest.fail "missing row not detected");
  (match Rule_audit.compare_results ~ordered:true a shuffled with
  | Error msg ->
    Alcotest.(check bool) "ordered compare reports position" true
      (contains "row 0" msg)
  | Ok () -> Alcotest.fail "ordered divergence not detected");
  match Rule_audit.compare_results a (a @ [ row [ i 3; s "z" ] ]) with
  | Error msg ->
    Alcotest.(check bool) "reports the gained row" true (contains "gained" msg)
  | Ok () -> Alcotest.fail "extra row not detected"

(** A rule whose action breaks QGM consistency is caught mid-rewrite and
    attributed by name. *)
let test_instrument_catches_bad_rule () =
  let db = sample_db () in
  let g = build_g db "SELECT partno FROM quotations" in
  let corrupted (b : Qgm.box) =
    match b.Qgm.b_head with
    | { Qgm.hc_expr = Some (Qgm.Col (999, _)); _ } :: _ -> true
    | _ -> false
  in
  let bad =
    Rule.make ~name:"graph_smasher" ~rule_class:"test"
      ~condition:(fun ctx ->
        ctx.Rule.box.Qgm.b_id = ctx.Rule.graph.Qgm.top
        && not (corrupted ctx.Rule.box))
      ~action:(fun ctx ->
        (List.hd ctx.Rule.box.Qgm.b_head).Qgm.hc_expr <- Some (Qgm.Col (999, 0)))
      ()
  in
  match Engine.run ~rules:(Rule_audit.instrument [ bad ]) g with
  | _ -> Alcotest.fail "inconsistent firing not detected"
  | exception Rule_audit.Unsound msg ->
    Alcotest.(check bool) "names the rule" true (contains "graph_smasher" msg);
    Alcotest.(check bool) "after the firing" true (contains "after" msg)

(** A rule that keeps QGM consistent but changes semantics is caught by
    the differential oracle under paranoid mode. *)
let test_differential_catches_unsound_rule () =
  let db = sample_db () in
  let evil =
    Rule.make ~name:"predicate_dropper" ~rule_class:"test"
      ~condition:(fun ctx ->
        ctx.Rule.box.Qgm.b_kind = Qgm.Select && ctx.Rule.box.Qgm.b_preds <> [])
      ~action:(fun ctx -> ctx.Rule.box.Qgm.b_preds <- [])
      ()
  in
  Rule.add db.Starburst.Corona.rules evil;
  db.Starburst.Corona.paranoid <- true;
  (match q db "SELECT partno FROM quotations WHERE price < 20" with
  | _ -> Alcotest.fail "semantic divergence not detected"
  | exception Rule_audit.Unsound msg ->
    Alcotest.(check bool) "divergence reported" true (contains "diverge" msg));
  db.Starburst.Corona.paranoid <- false

(** Paranoid mode is transparent for sound rewrites: same rows, rule
    audit silent, differential green. *)
let test_paranoid_transparent () =
  let db = sample_db () in
  let text =
    "SELECT q.partno FROM quotations q WHERE q.partno IN (SELECT partno FROM \
     inventory WHERE type = 'CPU') ORDER BY q.partno"
  in
  let plain = q db text in
  db.Starburst.Corona.paranoid <- true;
  let audited = q db text in
  db.Starburst.Corona.paranoid <- false;
  check_rows "same rows under paranoid mode" plain audited

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_codes db text =
  List.map (fun d -> d.Lint.d_code) (Lint.lint_qgm (build_g db text))

let test_lint_statement () =
  let db = sample_db () in
  Alcotest.(check bool) "always-false flagged" true
    (List.mem "always-false"
       (lint_codes db "SELECT partno FROM quotations WHERE 1 = 2"));
  Alcotest.(check bool) "shadowed column flagged" true
    (List.mem "shadowed-column"
       (lint_codes db "SELECT partno, partno FROM quotations"));
  Alcotest.(check bool) "unused setformer flagged" true
    (List.mem "unused-quant"
       (lint_codes db "SELECT q.partno FROM quotations q, inventory i"));
  Alcotest.(check bool) "unordered LIMIT flagged" true
    (List.mem "unordered-limit"
       (lint_codes db "SELECT partno FROM quotations LIMIT 2"));
  (* a clean query lints clean *)
  Alcotest.(check (list string)) "clean query" []
    (lint_codes db
       "SELECT q.partno FROM quotations q WHERE q.price < 20 ORDER BY q.partno");
  (* diagnostics carry their box *)
  match Lint.lint_qgm (build_g db "SELECT partno FROM quotations WHERE 1 = 2") with
  | d :: _ ->
    Alcotest.(check bool) "locates a box" true
      (match d.Lint.d_loc with Lint.Box _ -> true | Lint.Table _ | Lint.Rule _ -> false)
  | [] -> Alcotest.fail "no diagnostics"

let test_lint_catalog () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE t (a INT)");
  ignore (Starburst.run db "INSERT INTO t VALUES (1), (2), (3)");
  let diags = Lint.lint_catalog db.Starburst.Corona.catalog in
  Alcotest.(check bool) "missing stats flagged" true
    (List.exists (fun d -> d.Lint.d_code = "no-stats") diags);
  ignore (Starburst.run db "ANALYZE");
  Alcotest.(check (list string)) "analyzed catalog is clean" []
    (List.map (fun d -> d.Lint.d_code)
       (Lint.lint_catalog db.Starburst.Corona.catalog))

let test_const_truth () =
  let t = Lint.const_truth in
  Alcotest.(check (option bool)) "1 = 2" (Some false)
    (t (Qgm.Bin (Ast.Eq, Qgm.Lit (Value.Int 1), Qgm.Lit (Value.Int 2))));
  Alcotest.(check (option bool)) "1 <= 2" (Some true)
    (t (Qgm.Bin (Ast.Le, Qgm.Lit (Value.Int 1), Qgm.Lit (Value.Int 2))));
  Alcotest.(check (option bool)) "false AND unknown" (Some false)
    (t (Qgm.Bin (Ast.And, Qgm.Lit (Value.Bool false), Qgm.Col (1, 0))));
  Alcotest.(check (option bool)) "column is opaque" None (t (Qgm.Col (1, 0)))

(* ------------------------------------------------------------------ *)
(* EXPLAIN VERIFY / parser                                             *)
(* ------------------------------------------------------------------ *)

let test_explain_verify () =
  let db = sample_db () in
  match
    Starburst.run db
      "EXPLAIN VERIFY SELECT partno FROM quotations WHERE partno IN (SELECT \
       partno FROM inventory WHERE type = 'CPU')"
  with
  | Starburst.Corona.Message s ->
    List.iter
      (fun sub ->
        Alcotest.(check bool) (Fmt.str "report mentions %S" sub) true
          (contains sub s))
      [ "== VERIFY =="; "qgm (built)"; "rule audit"; "plan (optimized)"; "differential" ];
    Alcotest.(check bool) "no divergence" false (contains "DIVERGED" s);
    Alcotest.(check bool) "no unsoundness" false (contains "UNSOUND" s)
  | _ -> Alcotest.fail "expected a Message result"

let test_parser_roundtrip () =
  match Sb_hydrogen.Parser.statement "EXPLAIN VERIFY SELECT src FROM edges" with
  | Ast.Stmt_explain (Ast.Explain_verify, _) as stmt ->
    Alcotest.(check bool) "pretty-prints back" true
      (contains "EXPLAIN VERIFY" (Sb_hydrogen.Pretty.statement_to_string stmt))
  | _ -> Alcotest.fail "EXPLAIN VERIFY did not parse"

let suite =
  ( "verify",
    [
      case "corrupted plan table" test_corrupted_plans;
      case "plan checks against the catalog" test_plan_check_catalog;
      case "real plans are valid" test_real_plans_are_valid;
      case "corrupted QGM table" test_corrupted_qgm;
      case "violations name the box" test_violations_name_the_box;
      case "differential result comparison" test_compare_results;
      case "audit catches an inconsistent rule" test_instrument_catches_bad_rule;
      case "differential catches an unsound rule" test_differential_catches_unsound_rule;
      case "paranoid mode is transparent" test_paranoid_transparent;
      case "statement lints" test_lint_statement;
      case "catalog lints" test_lint_catalog;
      case "constant folding" test_const_truth;
      case "EXPLAIN VERIFY report" test_explain_verify;
      case "EXPLAIN VERIFY parses" test_parser_roundtrip;
    ] )
