(** lib/conc tests: the Promise and Rwlock primitives extracted from
    the server, and the lock-discipline checker itself — strict-mode
    re-entrancy and unlock-without-lock, a seeded lock-order inversion
    (with the resulting acquisition-graph cycle), a seeded
    unprotected-field lockset race, and armed two-domain interleavings
    over the real Plan_cache and Catalog that must stay silent. *)

module Lock = Sb_conc.Lock
module Rwlock = Sb_conc.Rwlock
module Promise = Sb_conc.Promise
module D = Sb_conc.Discipline
module Catalog = Sb_storage.Catalog
module Schema = Sb_storage.Schema
module Datatype = Sb_storage.Datatype
module Plan_cache = Starburst.Plan_cache

(* The checker's state is global.  Each discipline test runs inside
   [checked], which resets and arms the detector, then restores the
   session-wide armed state (the whole suite may be running under
   STARBURST_LOCKCHECK=1). *)
let checked ?(strict = false) f =
  let was = D.armed () in
  D.reset ();
  D.arm ~strict ();
  Fun.protect f ~finally:(fun () ->
      D.reset ();
      if was then D.arm () else D.disarm ())

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- promises ------------------------------------------------------ *)

let test_promise_basic () =
  let p = Promise.create () in
  Alcotest.(check bool) "unresolved peeks None" true (Promise.peek p = None);
  Promise.resolve p 42;
  Promise.resolve p 43;
  Alcotest.(check int) "first writer wins" 42 (Promise.await p);
  Alcotest.(check bool) "peek after resolve" true (Promise.peek p = Some 42);
  Alcotest.(check int) "pre-resolved" 7 (Promise.await (Promise.resolved 7))

(* a domain parked in [await] must be woken by a resolve from another
   domain (not just find the value on a later poll) *)
let test_promise_await_wakeup () =
  let p = Promise.create () in
  let waiter = Domain.spawn (fun () -> Promise.await p + 1) in
  Promise.resolve p 41;
  Alcotest.(check int) "woken with the resolved value" 42 (Domain.join waiter)

(* --- locks release on raise ---------------------------------------- *)

let test_lock_released_on_raise () =
  checked @@ fun () ->
  let l = Lock.create ~name:"test.raise" ~level:95 in
  (try Lock.with_lock l (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (list string)) "held stack empty after raise" []
    (D.held_locks ());
  Lock.with_lock l (fun () -> ());
  let rw = Rwlock.create ~name:"test.raise_rw" ~level:95 in
  (try Rwlock.with_write rw (fun () -> failwith "boom")
   with Failure _ -> ());
  Rwlock.with_read rw (fun () -> ());
  let r, w, ww = Rwlock.stats rw in
  Alcotest.(check bool) "rwlock idle after raise" true
    (r = 0 && (not w) && ww = 0)

(* --- rwlock writer preference -------------------------------------- *)

let test_rwlock_writer_preference () =
  let rw = Rwlock.create ~name:"test.rw" ~level:95 in
  Rwlock.rd_lock rw;
  let w_done = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        Rwlock.wr_lock rw;
        Atomic.set w_done true;
        Rwlock.wr_unlock rw)
  in
  (* wait until the writer is parked behind our read lock *)
  while (let _, _, ww = Rwlock.stats rw in ww < 1) do
    Domain.cpu_relax ()
  done;
  (* a reader arriving now must queue behind the waiting writer *)
  let r_saw_w = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        Rwlock.rd_lock rw;
        Atomic.set r_saw_w (Atomic.get w_done);
        Rwlock.rd_unlock rw)
  in
  Rwlock.rd_unlock rw;
  Domain.join writer;
  Domain.join reader;
  Alcotest.(check bool) "late reader ran after the waiting writer" true
    (Atomic.get r_saw_w)

(* --- strict-mode discipline violations ------------------------------ *)

let test_strict_reentry () =
  checked ~strict:true @@ fun () ->
  let l = Lock.create ~name:"test.reentry" ~level:95 in
  Lock.lock l;
  (* strict mode diagnoses the self-deadlock instead of hanging *)
  (match Lock.lock l with
  | () -> Alcotest.fail "re-entrant lock was not diagnosed"
  | exception D.Violation d ->
    Alcotest.(check bool) "kind" true (d.D.d_kind = D.Reentry);
    Alcotest.(check string) "subject" "test.reentry" d.D.d_subject);
  Lock.unlock l;
  Alcotest.(check (list string)) "stack empty" [] (D.held_locks ())

let test_strict_unlock_unheld () =
  checked ~strict:true @@ fun () ->
  let l = Lock.create ~name:"test.unheld" ~level:95 in
  match Lock.unlock l with
  | () -> Alcotest.fail "unlock without lock was not diagnosed"
  | exception D.Violation d ->
    Alcotest.(check bool) "kind" true (d.D.d_kind = D.Unlock)

(* --- seeded lock-order inversion (negative test) -------------------- *)

let test_seeded_order_inversion () =
  checked @@ fun () ->
  let outer = Lock.create ~name:"test.inv_outer" ~level:50 in
  let inner = Lock.create ~name:"test.inv_inner" ~level:40 in
  (* wrong way around: 50 then 40 *)
  Lock.with_lock outer (fun () -> Lock.with_lock inner (fun () -> ()));
  (* right way around, closing the cycle in the acquisition graph *)
  Lock.with_lock inner (fun () -> Lock.with_lock outer (fun () -> ()));
  (match D.diags () with
  | [ d ] ->
    Alcotest.(check bool) "kind" true (d.D.d_kind = D.Order);
    Alcotest.(check bool) "names the acquired lock" true
      (contains "test.inv_inner (level 40)" d.D.d_msg);
    Alcotest.(check bool) "names the held lock" true
      (contains "test.inv_outer (level 50)" d.D.d_msg)
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 diagnosis, got %d"
                           (List.length ds)));
  (match D.cycles () with
  | [ cyc ] ->
    Alcotest.(check (list string)) "both locks on the cycle"
      [ "test.inv_inner"; "test.inv_outer" ]
      (List.sort compare cyc)
  | cys -> Alcotest.fail (Printf.sprintf "expected 1 cycle, got %d"
                            (List.length cys)));
  Alcotest.(check bool) "report renders the inversion" true
    (contains "lock-order inversion reports: 1" (D.report_text ()))

(* --- seeded lockset race (negative test) ---------------------------- *)

let test_seeded_field_race () =
  checked @@ fun () ->
  let field = "test.race_field" in
  D.access ~field ~site:"seeded.ml:1" ~write:true;
  let other =
    Domain.spawn (fun () -> D.access ~field ~site:"seeded.ml:2" ~write:true)
  in
  Domain.join other;
  match D.diags () with
  | [ d ] ->
    Alcotest.(check bool) "kind" true (d.D.d_kind = D.Race);
    Alcotest.(check string) "subject is the field" field d.D.d_subject;
    Alcotest.(check bool) "names both sites" true
      (contains "seeded.ml:1" d.D.d_msg && contains "seeded.ml:2" d.D.d_msg)
  | ds ->
    Alcotest.fail (Printf.sprintf "expected 1 diagnosis, got %d"
                     (List.length ds))

(* the same sharing pattern under a common lock must stay silent *)
let test_locked_field_no_race () =
  checked @@ fun () ->
  let l = Lock.create ~name:"test.race_lock" ~level:95 in
  let field = "test.locked_field" in
  let touch site =
    Lock.with_lock l (fun () -> D.access ~field ~site ~write:true)
  in
  touch "seeded.ml:10";
  let other = Domain.spawn (fun () -> touch "seeded.ml:11") in
  Domain.join other;
  Alcotest.(check int) "no diagnosis" 0 (List.length (D.diags ()))

(* --- armed two-domain interleavings over real components ------------ *)

let test_plan_cache_two_domains () =
  checked @@ fun () ->
  let cache : int Plan_cache.t =
    Plan_cache.create ~shards:2 ~capacity:8 ()
  in
  let driver d () =
    for i = 0 to 199 do
      let epoch = i / 50 in
      let key = Printf.sprintf "select %d" (i mod 12) in
      (match Plan_cache.find cache ~epoch key with
      | Some _ -> ()
      | None -> Plan_cache.add cache ~epoch key i);
      if d = 0 && i mod 97 = 0 then Plan_cache.clear cache
      else ignore (Plan_cache.stats cache)
    done
  in
  let doms = Array.init 2 (fun d -> Domain.spawn (driver d)) in
  Array.iter Domain.join doms;
  Alcotest.(check int) "LRU/epoch churn is race-free" 0
    (List.length (D.diags ()));
  Alcotest.(check bool) "shard fields were instrumented" true
    (contains "plan_cache.shard0" (D.report_text ()))

let test_catalog_epoch_two_domains () =
  checked @@ fun () ->
  let cat = Catalog.create () in
  ignore
    (Catalog.create_table cat ~name:"t"
       ~schema:[| Schema.column ~nullable:false "k" Datatype.Int |] ());
  let bumper () =
    for _ = 1 to 100 do
      Catalog.bump_epoch cat
    done
  in
  let looker () =
    for _ = 1 to 100 do
      ignore (Catalog.epoch cat);
      ignore (Catalog.find_table cat "t");
      ignore (Catalog.table_names cat)
    done
  in
  let b = Domain.spawn bumper and l = Domain.spawn looker in
  Domain.join b;
  Domain.join l;
  Alcotest.(check int) "epoch bumps vs lookups are race-free" 0
    (List.length (D.diags ()));
  Alcotest.(check bool) "epoch advanced" true (Catalog.epoch cat >= 100)

let suite =
  ( "conc",
    [
      Alcotest.test_case "promise basic" `Quick test_promise_basic;
      Alcotest.test_case "promise await wakeup" `Quick
        test_promise_await_wakeup;
      Alcotest.test_case "locks released on raise" `Quick
        test_lock_released_on_raise;
      Alcotest.test_case "rwlock writer preference" `Quick
        test_rwlock_writer_preference;
      Alcotest.test_case "strict re-entrancy" `Quick test_strict_reentry;
      Alcotest.test_case "strict unlock without lock" `Quick
        test_strict_unlock_unheld;
      Alcotest.test_case "seeded lock-order inversion" `Quick
        test_seeded_order_inversion;
      Alcotest.test_case "seeded lockset race" `Quick test_seeded_field_race;
      Alcotest.test_case "locked field stays silent" `Quick
        test_locked_field_no_race;
      Alcotest.test_case "plan cache, two domains, armed" `Quick
        test_plan_cache_two_domains;
      Alcotest.test_case "catalog epoch, two domains, armed" `Quick
        test_catalog_epoch_two_domains;
    ] )
