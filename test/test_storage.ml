(** Unit and property tests for the Core storage substrate: values,
    codecs, pages, buffer pool, storage managers, B-tree, R-tree,
    attachments and statistics. *)

open Sb_storage
open Test_util

(* ------------------------------------------------------------------ *)
(* Values and datatypes                                                *)
(* ------------------------------------------------------------------ *)

let test_value_compare () =
  Alcotest.(check bool) "int/float numeric" true (Value.compare (i 2) (f 2.0) = 0);
  Alcotest.(check bool) "null lowest" true (Value.compare nul (i (-1000)) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (s "a") (s "b") < 0);
  Alcotest.(check bool) "bool order" true (Value.compare (b false) (b true) < 0);
  Alcotest.(check bool) "equal hash" true (Value.hash (i 3) = Value.hash (f 3.0))

let test_value_ext_registry () =
  let reg = Datatype.create_registry () in
  Datatype.register reg
    {
      Datatype.ext_name = "MOD7";
      ext_parse = (fun s -> Ok s);
      ext_compare =
        (fun a b -> compare (int_of_string a mod 7) (int_of_string b mod 7));
      ext_print = (fun p -> "m" ^ p);
    };
  let a = Value.Ext ("MOD7", "8") and c = Value.Ext ("MOD7", "1") in
  Alcotest.(check bool) "registry compare" true (Value.compare ~registry:reg a c = 0);
  Alcotest.(check bool) "without registry" false (Value.compare a c = 0);
  Alcotest.(check string) "print" "m8" (Value.to_string ~registry:reg a)

let test_schema_validate () =
  let schema =
    [| Schema.column ~nullable:false "a" Datatype.Int;
       Schema.column "b" Datatype.String |]
  in
  Alcotest.(check bool) "ok" true (Schema.validate ~schema (row [ i 1; s "x" ]) = Ok ());
  Alcotest.(check bool) "null ok" true (Schema.validate ~schema (row [ i 1; nul ]) = Ok ());
  Alcotest.(check bool) "not null" true
    (Result.is_error (Schema.validate ~schema (row [ nul; s "x" ])));
  Alcotest.(check bool) "type" true
    (Result.is_error (Schema.validate ~schema (row [ s "no"; s "x" ])));
  Alcotest.(check bool) "arity" true
    (Result.is_error (Schema.validate ~schema (row [ i 1 ])))

(* ------------------------------------------------------------------ *)
(* Row codec                                                           *)
(* ------------------------------------------------------------------ *)

let value_gen =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun x -> Value.Int x) int;
        map (fun x -> Value.Float (float_of_int x /. 7.0)) int;
        map (fun x -> Value.Bool x) bool;
        map (fun x -> Value.String x) (string_size (0 -- 40));
        map2 (fun a p -> Value.Ext (a, p)) (string_size (1 -- 5)) (string_size (0 -- 10));
      ])

let tuple_gen = QCheck2.Gen.(map Array.of_list (list_size (0 -- 12) value_gen))

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"row codec round-trip" ~count:500 tuple_gen (fun t ->
      Tuple.compare (Row_codec.decode (Row_codec.encode t)) t = 0)

let fixed_schema =
  [| Schema.column "a" Datatype.Int;
     Schema.column "b" Datatype.Float;
     Schema.column "c" Datatype.Bool |]

let fixed_tuple_gen =
  QCheck2.Gen.(
    map
      (fun (a, bv, c) ->
        [|
          (match a with Some x -> Value.Int x | None -> Value.Null);
          (match bv with Some x -> Value.Float (float_of_int x) | None -> Value.Null);
          (match c with Some x -> Value.Bool x | None -> Value.Null);
        |])
      (triple (opt int) (opt int) (opt bool)))

let prop_fixed_codec =
  QCheck2.Test.make ~name:"fixed codec round-trip" ~count:300 fixed_tuple_gen
    (fun t ->
      Tuple.compare
        (Row_codec.decode_fixed ~schema:fixed_schema
           (Row_codec.encode_fixed ~schema:fixed_schema t))
        t
      = 0)

(* ------------------------------------------------------------------ *)
(* Pages                                                               *)
(* ------------------------------------------------------------------ *)

let test_page_basic () =
  let p = Page.create 0 in
  let s1 = Page.insert p "hello" in
  let s2 = Page.insert p "world!" in
  Alcotest.(check (option string)) "get1" (Some "hello") (Page.get p s1);
  Alcotest.(check (option string)) "get2" (Some "world!") (Page.get p s2);
  Page.delete p s1;
  Alcotest.(check (option string)) "deleted" None (Page.get p s1);
  Alcotest.(check (option string)) "survivor" (Some "world!") (Page.get p s2);
  Alcotest.(check int) "live count" 1 (Page.live_count p);
  (* update in place *)
  Alcotest.(check bool) "shrink update" true (Page.update p s2 "tiny");
  Alcotest.(check (option string)) "updated" (Some "tiny") (Page.get p s2)

let test_page_compact () =
  let p = Page.create ~size:256 0 in
  let slots = ref [] in
  (try
     while true do
       slots := Page.insert p (String.make 20 'x') :: !slots
     done
   with Sb_resil.Err.Error _ -> ());
  let n = List.length !slots in
  Alcotest.(check bool) "filled some" true (n > 3);
  (* free every other slot, compact, and re-insert *)
  List.iteri (fun k slot -> if k mod 2 = 0 then Page.delete p slot) !slots;
  Page.compact p;
  let slot = Page.insert p (String.make 20 'y') in
  Alcotest.(check (option string)) "post-compact insert" (Some (String.make 20 'y'))
    (Page.get p slot);
  (* survivors intact *)
  List.iteri
    (fun k slot ->
      if k mod 2 = 1 then
        Alcotest.(check (option string)) "survivor" (Some (String.make 20 'x'))
          (Page.get p slot))
    !slots

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_buffer_pool_eviction () =
  let pool = Buffer_pool.create ~capacity:4 () in
  let file = Buffer_pool.create_file pool in
  for _ = 1 to 10 do
    ignore (Buffer_pool.alloc_page pool file)
  done;
  (* write a distinct record into each page *)
  for p = 0 to 9 do
    Buffer_pool.with_page pool file p (fun page ->
        ignore (Page.insert page (string_of_int p)))
  done;
  Buffer_pool.reset_stats pool;
  (* all data survives eviction *)
  for p = 0 to 9 do
    Buffer_pool.with_page pool file p (fun page ->
        Alcotest.(check (option string))
          (Printf.sprintf "page %d" p)
          (Some (string_of_int p)) (Page.get page 0))
  done;
  let stats = Buffer_pool.stats pool in
  Alcotest.(check bool) "physical reads happened" true (stats.Buffer_pool.physical_reads > 0);
  Alcotest.(check int) "logical reads" 10 stats.Buffer_pool.logical_reads

(* ------------------------------------------------------------------ *)
(* Storage managers                                                    *)
(* ------------------------------------------------------------------ *)

let exercise_storage_manager make_instance =
  let sm : Storage_manager.instance = make_instance () in
  let rids =
    List.init 500 (fun k ->
        sm.Storage_manager.insert (row [ i k; f (float_of_int (k * 2)); b (k mod 2 = 0) ]))
  in
  Alcotest.(check int) "count" 500 (sm.Storage_manager.tuple_count ());
  (* fetch *)
  List.iteri
    (fun k rid ->
      match sm.Storage_manager.fetch rid with
      | Some t -> Alcotest.check value_testable "fetch col0" (i k) t.(0)
      | None -> Alcotest.failf "missing rid %d" k)
    rids;
  (* delete every third *)
  List.iteri
    (fun k rid -> if k mod 3 = 0 then ignore (sm.Storage_manager.delete rid))
    rids;
  Alcotest.(check int) "after delete" (500 - 167) (sm.Storage_manager.tuple_count ());
  (* update survivors *)
  List.iteri
    (fun k rid ->
      if k mod 3 = 1 then
        ignore (sm.Storage_manager.update rid (row [ i (-k); f 0.0; b false ])))
    rids;
  (* scan agrees *)
  let scanned = List.of_seq (sm.Storage_manager.scan ()) in
  Alcotest.(check int) "scan count" (500 - 167) (List.length scanned);
  List.iter
    (fun (rid, t) ->
      match sm.Storage_manager.fetch rid with
      | Some t' -> Alcotest.check tuple_testable "scan=fetch" t t'
      | None -> Alcotest.fail "scan returned dead rid")
    scanned;
  (* double delete is false *)
  Alcotest.(check bool) "double delete" false
    (sm.Storage_manager.delete (List.nth rids 0));
  sm.Storage_manager.truncate ();
  Alcotest.(check int) "truncated" 0 (sm.Storage_manager.tuple_count ());
  Alcotest.(check int) "truncated scan" 0
    (List.length (List.of_seq (sm.Storage_manager.scan ())))

let sm_schema =
  [| Schema.column "a" Datatype.Int;
     Schema.column "b" Datatype.Float;
     Schema.column "c" Datatype.Bool |]

let test_heap_manager () =
  exercise_storage_manager (fun () ->
      let pool = Buffer_pool.create () in
      Heap_file.factory.Storage_manager.create ~pool ~schema:sm_schema)

let test_fixed_manager () =
  exercise_storage_manager (fun () ->
      let pool = Buffer_pool.create () in
      Fixed_file.factory.Storage_manager.create ~pool ~schema:sm_schema)

let test_fixed_rejects_varlen () =
  let schema = [| Schema.column "a" Datatype.String |] in
  Alcotest.(check bool) "supports" false
    (Fixed_file.factory.Storage_manager.supports schema)

(* variable-length records spanning growth *)
let test_heap_varlen () =
  let pool = Buffer_pool.create () in
  let schema = [| Schema.column "a" Datatype.String |] in
  let sm = Heap_file.factory.Storage_manager.create ~pool ~schema in
  let rids =
    List.init 100 (fun k -> sm.Storage_manager.insert (row [ s (String.make (k * 7) 'z') ]))
  in
  List.iteri
    (fun k rid ->
      match sm.Storage_manager.fetch rid with
      | Some t -> Alcotest.(check int) "length" (k * 7) (String.length (Value.as_string t.(0)))
      | None -> Alcotest.fail "missing")
    rids;
  (* grow a record beyond its page: the manager may refuse, in which
     case the caller (Table_store) deletes and reinserts *)
  let rid = List.nth rids 1 in
  let big_row = row [ s (String.make 3000 'w') ] in
  let rid =
    if sm.Storage_manager.update rid big_row then rid
    else begin
      ignore (sm.Storage_manager.delete rid);
      sm.Storage_manager.insert big_row
    end
  in
  (match sm.Storage_manager.fetch rid with
  | Some t -> Alcotest.(check int) "grown" 3000 (String.length (Value.as_string t.(0)))
  | None -> Alcotest.fail "grown record missing")

(* ------------------------------------------------------------------ *)
(* B-tree vs model                                                     *)
(* ------------------------------------------------------------------ *)

let rid_of k = { Storage_manager.rid_page = k; rid_slot = k * 7 }

let btree_ops_gen =
  QCheck2.Gen.(
    list_size (10 -- 400)
      (oneof
         [
           map (fun k -> `Insert (k mod 50)) small_nat;
           map (fun k -> `Delete (k mod 50)) small_nat;
         ]))

let prop_btree_model =
  QCheck2.Test.make ~name:"b-tree matches sorted model" ~count:120 btree_ops_gen
    (fun ops ->
      let t = Btree.create ~order:4 () in
      let model : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      let serial = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Insert k ->
            incr serial;
            Btree.insert t [| Value.Int k |] (rid_of !serial);
            Hashtbl.replace model k
              (!serial :: Option.value ~default:[] (Hashtbl.find_opt model k))
          | `Delete k -> (
            match Hashtbl.find_opt model k with
            | Some (v :: rest) ->
              let ok = Btree.delete t [| Value.Int k |] (rid_of v) in
              if not ok then raise Exit;
              if rest = [] then Hashtbl.remove model k
              else Hashtbl.replace model k rest
            | _ ->
              if Btree.delete t [| Value.Int k |] (rid_of 999999) then raise Exit))
        ops;
      (* structural invariants *)
      if not (Btree.check t) then raise Exit;
      (* full range scan = sorted model *)
      let scanned =
        List.of_seq (Btree.range t ())
        |> List.map (fun (k, rid) -> (Value.as_int k.(0), rid.Storage_manager.rid_page))
      in
      let expected =
        Hashtbl.fold (fun k vs acc -> List.map (fun v -> (k, v)) vs @ acc) model []
        |> List.sort compare
      in
      List.sort compare scanned = expected
      (* point lookups agree *)
      && Hashtbl.fold
           (fun k vs acc ->
             acc
             && List.sort compare
                  (List.map (fun r -> r.Storage_manager.rid_page) (Btree.find t [| Value.Int k |]))
                = List.sort compare vs)
           model true)

let test_btree_range () =
  let t = Btree.create ~order:4 () in
  for k = 0 to 99 do
    Btree.insert t [| Value.Int k |] (rid_of k)
  done;
  let range ?lo ?hi () =
    List.of_seq (Btree.range t ?lo ?hi ()) |> List.map (fun (k, _) -> Value.as_int k.(0))
  in
  Alcotest.(check (list int)) "closed range" [ 10; 11; 12 ]
    (range ~lo:([| Value.Int 10 |], true) ~hi:([| Value.Int 12 |], true) ());
  Alcotest.(check (list int)) "open range" [ 11 ]
    (range ~lo:([| Value.Int 10 |], false) ~hi:([| Value.Int 12 |], false) ());
  Alcotest.(check int) "unbounded" 100 (List.length (range ()));
  Alcotest.(check (list int)) "hi only" [ 0; 1; 2 ]
    (range ~hi:([| Value.Int 2 |], true) ());
  Alcotest.(check (list int)) "lo only" [ 97; 98; 99 ]
    (range ~lo:([| Value.Int 97 |], true) ())

(* ------------------------------------------------------------------ *)
(* R-tree vs model                                                     *)
(* ------------------------------------------------------------------ *)

let rect_gen =
  QCheck2.Gen.(
    map
      (fun (x, y, w, h) ->
        Rtree.rect
          ~x0:(float_of_int (x mod 100))
          ~y0:(float_of_int (y mod 100))
          ~x1:(float_of_int ((x mod 100) + 1 + (w mod 20)))
          ~y1:(float_of_int ((y mod 100) + 1 + (h mod 20))))
      (quad small_nat small_nat small_nat small_nat))

let prop_rtree_model =
  QCheck2.Test.make ~name:"r-tree matches linear scan" ~count:60
    QCheck2.Gen.(pair (list_size (1 -- 200) rect_gen) (list_size (1 -- 10) rect_gen))
    (fun (rects, queries) ->
      let t = Rtree.create ~max_entries:4 () in
      List.iteri (fun k r -> Rtree.insert t r (rid_of k)) rects;
      List.for_all
        (fun query ->
          let found =
            List.sort compare
              (List.map (fun r -> r.Storage_manager.rid_page) (Rtree.search t query))
          in
          let expected =
            List.mapi (fun k r -> (k, r)) rects
            |> List.filter (fun (_, r) -> Rtree.overlaps r query)
            |> List.map fst |> List.sort compare
          in
          found = expected)
        queries)

let test_rtree_delete () =
  let t = Rtree.create ~max_entries:4 () in
  let r1 = Rtree.rect ~x0:0. ~y0:0. ~x1:1. ~y1:1. in
  let r2 = Rtree.rect ~x0:5. ~y0:5. ~x1:6. ~y1:6. in
  Rtree.insert t r1 (rid_of 1);
  Rtree.insert t r2 (rid_of 2);
  Alcotest.(check bool) "delete hit" true (Rtree.delete t r1 (rid_of 1));
  Alcotest.(check bool) "delete miss" false (Rtree.delete t r1 (rid_of 1));
  Alcotest.(check int) "one left" 1 (Rtree.entry_count t);
  Alcotest.(check int) "search survivor" 1
    (List.length (Rtree.search t (Rtree.rect ~x0:0. ~y0:0. ~x1:10. ~y1:10.)))

(* ------------------------------------------------------------------ *)
(* Table store + attachments                                           *)
(* ------------------------------------------------------------------ *)

let test_attachment_maintenance () =
  let cat = Catalog.create () in
  let schema =
    [| Schema.column "k" Datatype.Int; Schema.column "v" Datatype.String |]
  in
  let tab = Catalog.create_table cat ~name:"t" ~schema () in
  let am = Catalog.create_index cat ~name:"t_k" ~table:"t" ~kind:"btree" ~columns:[ "k" ] in
  let rids = List.init 100 (fun k -> Table_store.insert tab (row [ i (k mod 10); s "x" ])) in
  Alcotest.(check int) "entries" 100 (am.Access_method.am_entry_count ());
  (* search by key *)
  let hits = List.of_seq (am.Access_method.am_search (Access_method.Key_eq [| i 3 |])) in
  Alcotest.(check int) "key 3 hits" 10 (List.length hits);
  (* delete maintains the index *)
  List.iteri (fun k rid -> if k mod 10 = 3 then ignore (Table_store.delete tab rid)) rids;
  Alcotest.(check int) "after delete" 0
    (List.length (List.of_seq (am.Access_method.am_search (Access_method.Key_eq [| i 3 |]))));
  (* update maintains the index *)
  let rid0 = List.nth rids 0 in
  ignore (Table_store.update tab rid0 (row [ i 777; s "y" ]));
  Alcotest.(check int) "moved key" 1
    (List.length (List.of_seq (am.Access_method.am_search (Access_method.Key_eq [| i 777 |]))));
  (* backfill on attach *)
  let am2 = Catalog.create_index cat ~name:"t_k2" ~table:"t" ~kind:"btree" ~columns:[ "k" ] in
  Alcotest.(check int) "backfilled" (Table_store.tuple_count tab)
    (am2.Access_method.am_entry_count ())

let test_catalog_errors () =
  let cat = Catalog.create () in
  let schema = [| Schema.column "a" Datatype.Int |] in
  ignore (Catalog.create_table cat ~name:"t" ~schema ());
  Alcotest.check_raises "duplicate table" (Catalog.Catalog_error "table or view t already exists")
    (fun () -> ignore (Catalog.create_table cat ~name:"t" ~schema ()));
  Alcotest.check_raises "unknown sm" (Catalog.Catalog_error "unknown storage manager nope")
    (fun () -> ignore (Catalog.create_table cat ~name:"u" ~storage:"nope" ~schema ()));
  Alcotest.check_raises "unknown col" (Catalog.Catalog_error "no column zz in t")
    (fun () -> ignore (Catalog.create_index cat ~name:"x" ~table:"t" ~kind:"btree" ~columns:[ "zz" ]))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let schema = [| Schema.column "a" Datatype.Int; Schema.column "b" Datatype.String |] in
  let rows =
    List.init 100 (fun k -> row [ i (k mod 10); (if k mod 4 = 0 then nul else s "x") ])
  in
  let st = Stats.analyze ~schema ~pages:3 (List.to_seq rows) in
  Alcotest.(check int) "cardinality" 100 st.Stats.ts_cardinality;
  Alcotest.(check int) "distinct a" 10 st.Stats.ts_columns.(0).Stats.cs_distinct;
  Alcotest.(check int) "nulls b" 25 st.Stats.ts_columns.(1).Stats.cs_nulls;
  Alcotest.(check (option value_testable)) "min" (Some (i 0)) st.Stats.ts_columns.(0).Stats.cs_min;
  Alcotest.(check (option value_testable)) "max" (Some (i 9)) st.Stats.ts_columns.(0).Stats.cs_max;
  let sel = Stats.eq_selectivity st 0 (i 3) in
  Alcotest.(check bool) "eq sel" true (Float.abs (sel -. 0.1) < 0.001);
  let lt5 = Stats.range_selectivity st 0 ~op:`Lt (i 5) in
  Alcotest.(check bool) "range sel" true (lt5 > 0.3 && lt5 < 0.7)

(* ------------------------------------------------------------------ *)
(* Write-ahead log and crash recovery                                  *)
(* ------------------------------------------------------------------ *)

let test_wal_basics () =
  let w = Wal.create () in
  let txn = Wal.begin_txn w in
  let l1 =
    Wal.append w
      (Wal.Update { u_txn = txn; u_table = "t"; u_before = None;
                    u_after = Some (row [ i 1 ]) })
  in
  let l2 = Wal.append w (Wal.Commit txn) in
  Alcotest.(check bool) "LSNs monotonic" true (0 < l1 && l1 < l2);
  let st = Wal.stats w in
  Alcotest.(check int) "pending tail" 3 st.Wal.s_pending;
  Alcotest.(check int) "nothing stable yet" 0 st.Wal.s_stable;
  Wal.flush w;
  let st = Wal.stats w in
  Alcotest.(check int) "tail drained" 0 st.Wal.s_pending;
  Alcotest.(check int) "stable" 3 st.Wal.s_stable;
  let records, truncated = Wal.stable_records w in
  Alcotest.(check int) "readable" 3 (List.length records);
  Alcotest.(check int) "no torn records" 0 truncated;
  Alcotest.(check (list int)) "committed" [ txn ] (Wal.committed_txns w);
  (* volatile tail vanishes at a crash; the stable prefix survives *)
  let txn2 = Wal.begin_txn w in
  ignore (Wal.append w (Wal.Commit txn2));
  Wal.crash w;
  Alcotest.(check bool) "needs recovery" true (Wal.needs_recovery w);
  Alcotest.(check (list int)) "tail lost" [ txn ] (Wal.committed_txns w)

let test_wal_torn_record () =
  let w = Wal.create () in
  let faults = Sb_resil.Faults.create ~seed:1 () in
  Sb_resil.Faults.fail_nth faults ~outcome:Sb_resil.Faults.Crash
    ~site:"wal.flush" [ 2 ];
  Wal.set_faults w faults;
  let txn = Wal.begin_txn w in
  ignore (Wal.append w (Wal.Commit txn));
  Wal.flush w;
  let txn2 = Wal.begin_txn w in
  ignore (Wal.append w (Wal.Commit txn2));
  (match Wal.flush w with
  | () -> Alcotest.fail "expected a crash at wal.flush"
  | exception Sb_resil.Faults.Crashed site ->
    Alcotest.(check string) "site" "wal.flush" site);
  Wal.crash w;
  (* the torn write left txn2's Begin with a corrupt CRC: the readable
     prefix stops before it, so txn2 never committed *)
  let records, truncated = Wal.stable_records w in
  Alcotest.(check int) "torn" 1 truncated;
  Alcotest.(check int) "prefix readable" 2 (List.length records);
  Alcotest.(check (list int)) "only txn1" [ txn ] (Wal.committed_txns w)

let test_wal_checkpoint_compaction () =
  let w = Wal.create () in
  for _ = 1 to 5 do
    let txn = Wal.begin_txn w in
    ignore (Wal.append w (Wal.Commit txn));
    Wal.flush w
  done;
  Alcotest.(check int) "before" 10 (Wal.stats w).Wal.s_stable;
  Wal.checkpoint w ~tables:[ ("t", [ row [ i 1 ] ]) ];
  Alcotest.(check int) "compacted to the checkpoint" 1
    (Wal.stats w).Wal.s_stable;
  let txn = Wal.begin_txn w in
  ignore (Wal.append w (Wal.Commit txn));
  Wal.flush w;
  Alcotest.(check int) "tail grows past it" 3 (Wal.stats w).Wal.s_stable

let test_wal_save_load () =
  let w = Wal.create () in
  let txn = Wal.begin_txn w in
  ignore
    (Wal.append w
       (Wal.Update { u_txn = txn; u_table = "t"; u_before = None;
                     u_after = Some (row [ i 7; s "x"; nul ]) }));
  ignore (Wal.append w (Wal.Commit txn));
  Wal.flush w;
  let path = Filename.temp_file "sbwal" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Wal.save_file w path;
      let w2 = Wal.create () in
      Alcotest.(check int) "records read" 3 (Wal.load_file w2 path);
      Alcotest.(check bool) "recovery flagged" true (Wal.needs_recovery w2);
      let a, _ = Wal.stable_records w and b, _ = Wal.stable_records w2 in
      Alcotest.(check bool) "round-trip" true (a = b))

(* a crash during one DML statement, at each injection site in turn.
   The first three statements committed before the crash, so recovery
   must rebuild them; the in-flight DELETE survives only when its
   Commit record reached the stable log before the crash fired
   (post-commit sites: buffer.flush, checkpoint). *)
let crash_matrix =
  [ ("wal.append", 3); ("wal.flush", 3); ("buffer.flush", 2); ("checkpoint", 2) ]

let test_crash_matrix () =
  List.iter
    (fun (site, rows_after) ->
      let db = Starburst.create () in
      let run t = ignore (Starburst.run db t) in
      run "CREATE TABLE acct (k INT UNIQUE, v INT)";
      run "SET wal_force_pages = on";
      run "SET wal_checkpoint = 1";
      run "INSERT INTO acct VALUES (1, 10), (2, 20)";
      run "UPDATE acct SET v = 11 WHERE k = 1";
      run "INSERT INTO acct VALUES (3, 30)";
      let epoch_before = db.Starburst.Corona.catalog.Catalog.epoch in
      let faults = Sb_resil.Faults.create ~seed:1 () in
      Sb_resil.Faults.fail_nth faults ~outcome:Sb_resil.Faults.Crash ~site [ 1 ];
      Starburst.Corona.set_faults db faults;
      (match Starburst.run db "DELETE FROM acct WHERE k = 2" with
      | _ -> Alcotest.failf "%s: expected a simulated crash" site
      | exception Starburst.Error e ->
        Alcotest.(check bool)
          (site ^ ": crash is a Storage error")
          true
          (e.Sb_resil.Err.err_stage = Sb_resil.Err.Storage));
      (* the processor refuses statements until recovery runs *)
      (match Starburst.run db "SELECT count(*) FROM acct" with
      | _ -> Alcotest.failf "%s: statements must be gated" site
      | exception Starburst.Error _ -> ());
      Starburst.Corona.set_faults db Sb_resil.Faults.none;
      ignore (Starburst.Corona.recover db);
      let rows = q db "SELECT k, v FROM acct ORDER BY k" in
      Alcotest.(check int) (site ^ ": row count") rows_after (List.length rows);
      (* committed effects are always visible after recovery *)
      Alcotest.(check bool)
        (site ^ ": committed update survives")
        true
        (List.exists (fun r -> r = row [ i 1; i 11 ]) rows);
      Alcotest.(check bool)
        (site ^ ": committed insert survives")
        true
        (List.exists (fun r -> r = row [ i 3; i 30 ]) rows);
      (* the epoch moved and new statements run normally *)
      Alcotest.(check bool)
        (site ^ ": epoch bumped")
        true
        (db.Starburst.Corona.catalog.Catalog.epoch > epoch_before);
      run "INSERT INTO acct VALUES (9, 90)";
      Alcotest.(check int)
        (site ^ ": db usable after recovery")
        (rows_after + 1)
        (List.length (q db "SELECT k FROM acct")))
    crash_matrix

let test_recovery_requires_wal () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE t (a INT)");
  ignore (Starburst.run db "SET wal = off");
  match Starburst.Corona.recover db with
  | _ -> Alcotest.fail "recovery with the WAL off must be an error"
  | exception Starburst.Error e ->
    Alcotest.(check bool) "storage stage" true
      (e.Sb_resil.Err.err_stage = Sb_resil.Err.Storage)

let test_statement_atomicity () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE t (a INT UNIQUE, b STRING)");
  ignore (Starburst.run db "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  (* the third row violates UNIQUE: the whole statement must roll back *)
  (match Starburst.run db "INSERT INTO t VALUES (3, 'z'), (1, 'dup')" with
  | _ -> Alcotest.fail "expected a unique violation"
  | exception Starburst.Error _ -> ());
  check_bag "no partial insert"
    [ row [ i 1; s "x" ]; row [ i 2; s "y" ] ]
    (q db "SELECT a, b FROM t");
  (* same for a multi-row UPDATE that collides mid-way *)
  (match Starburst.run db "UPDATE t SET a = 5 WHERE a >= 1" with
  | _ -> Alcotest.fail "expected a unique violation"
  | exception Starburst.Error _ -> ());
  check_bag "update rolled back"
    [ row [ i 1 ]; row [ i 2 ] ]
    (q db "SELECT a FROM t")

let test_buffer_pool_wal_rule () =
  let pool = Buffer_pool.create ~capacity:8 () in
  let lsn = ref 10 in
  let stable = ref 0 in
  Buffer_pool.set_lsn_source pool (fun () -> !lsn);
  Buffer_pool.set_stable_lsn pool (fun () -> !stable);
  let file = Buffer_pool.create_file pool in
  ignore (Buffer_pool.alloc_page pool file);
  ignore (Buffer_pool.alloc_page pool file);
  Buffer_pool.with_page pool file 0 (fun page -> ignore (Page.insert page "a"));
  Buffer_pool.with_page pool file 1 (fun page -> ignore (Page.insert page "b"));
  Alcotest.(check int) "dirty pages tracked" 2 (Buffer_pool.dirty_pages pool);
  (* WAL rule: a dirty page may not reach disk ahead of its log tail *)
  Alcotest.(check int) "nothing stable, nothing written" 0
    (Buffer_pool.flush_all pool);
  stable := 10;
  Alcotest.(check int) "stable log unlocks the flush" 2
    (Buffer_pool.flush_all pool);
  Alcotest.(check int) "all clean" 0 (Buffer_pool.dirty_pages pool)

let test_truncate_maintains_attachments () =
  let cat = Catalog.create () in
  let schema =
    [| Schema.column "k" Datatype.Int; Schema.column "v" Datatype.String |]
  in
  let tab = Catalog.create_table cat ~name:"t" ~schema () in
  let am =
    Catalog.create_index cat ~name:"t_k" ~table:"t" ~kind:"btree"
      ~columns:[ "k" ]
  in
  List.iter
    (fun k -> ignore (Table_store.insert tab (row [ i k; s "x" ])))
    [ 1; 2; 3 ];
  Alcotest.(check int) "filled" 3 (am.Access_method.am_entry_count ());
  Table_store.truncate tab;
  Alcotest.(check int) "no stale index entries" 0
    (am.Access_method.am_entry_count ());
  Alcotest.(check int) "no rows" 0 (Table_store.tuple_count tab)

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  ( "storage",
    [
      case "value compare" test_value_compare;
      case "external datatype registry" test_value_ext_registry;
      case "schema validation" test_schema_validate;
      qcheck prop_codec_roundtrip;
      qcheck prop_fixed_codec;
      case "page basic" test_page_basic;
      case "page compact" test_page_compact;
      case "buffer pool eviction" test_buffer_pool_eviction;
      case "heap storage manager" test_heap_manager;
      case "fixed storage manager" test_fixed_manager;
      case "fixed rejects varlen" test_fixed_rejects_varlen;
      case "heap variable-length" test_heap_varlen;
      qcheck prop_btree_model;
      case "btree range" test_btree_range;
      qcheck prop_rtree_model;
      case "rtree delete" test_rtree_delete;
      case "attachment maintenance" test_attachment_maintenance;
      case "catalog errors" test_catalog_errors;
      case "statistics" test_stats;
      case "wal basics" test_wal_basics;
      case "wal torn record" test_wal_torn_record;
      case "wal checkpoint compaction" test_wal_checkpoint_compaction;
      case "wal save/load round-trip" test_wal_save_load;
      case "crash matrix" test_crash_matrix;
      case "recovery requires the wal" test_recovery_requires_wal;
      case "statement atomicity" test_statement_atomicity;
      case "buffer pool wal rule" test_buffer_pool_wal_rule;
      case "truncate maintains attachments" test_truncate_maintains_attachments;
    ] )
