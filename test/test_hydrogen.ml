(** Tests for the Hydrogen language front end: lexer, parser,
    pretty-printer round-trips, and the function registry. *)

open Sb_hydrogen
open Test_util

let parse_ok text =
  match Parser.statement text with
  | s -> s
  | exception Parser.Parse_error (msg, _) -> Alcotest.failf "parse failed: %s (%s)" msg text

let roundtrips text =
  let ast = parse_ok text in
  let printed = Pretty.statement_to_string ast in
  let ast2 =
    match Parser.statement printed with
    | s -> s
    | exception Parser.Parse_error (msg, _) ->
      Alcotest.failf "re-parse failed: %s\n  printed: %s" msg printed
  in
  if ast <> ast2 then Alcotest.failf "round-trip changed AST for: %s\n  printed: %s" text printed

(* Printed-query fixture table: each pair pins the pretty-printer's
   exact output for one input, and the printed text must re-parse to the
   same AST.  These anchor the printer formats the fuzzer's round-trip
   oracle relies on (negative-literal parenthesisation, LIKE pattern
   quoting, float literals, canonical aggregate calls). *)
let printed_fixtures =
  [
    ( "SELECT -3 AS a, - (4) AS b, -2.5 AS c FROM t",
      "SELECT -3 AS a, (- (4)) AS b, -2.5 AS c FROM t" );
    ( "SELECT a FROM t WHERE name LIKE 'o''k%'",
      "SELECT a FROM t WHERE (name LIKE 'o''k%')" );
    ( "SELECT count(*), count(DISTINCT a), sum(a), min(b) FROM t",
      "SELECT count(*), count(DISTINCT a), sum(a), min(b) FROM t" );
    ( "SELECT a FROM t WHERE a BETWEEN -2 AND 4",
      "SELECT a FROM t WHERE (a BETWEEN -2 AND 4)" );
    ( "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y",
      "SELECT a FROM t LEFT OUTER JOIN u ON (t.x = u.y)" );
    ( "SELECT a FROM t RIGHT JOIN u ON TRUE",
      "SELECT a FROM t RIGHT OUTER JOIN u ON TRUE" );
    ( "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.x)",
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE (u.x = t.x))" );
    ( "SELECT a FROM t WHERE a >= ALL (SELECT b FROM u)",
      "SELECT a FROM t WHERE (a >= ALL (SELECT b FROM u))" );
    ( "SELECT a FROM t WHERE NOT (a IN (1, NULL, 3))",
      "SELECT a FROM t WHERE (NOT (a IN (1, NULL, 3)))" );
    ( "SELECT d, count(*) FROM t GROUP BY d HAVING count(*) > 2",
      "SELECT d, count(*) FROM t GROUP BY d HAVING (count(*) > 2)" );
    ( "SELECT DISTINCT a FROM t ORDER BY 1 DESC LIMIT 6",
      "SELECT DISTINCT a FROM t ORDER BY 1 DESC LIMIT 6" );
    ( "SELECT CASE WHEN a IS NULL THEN 'n' ELSE b END AS c FROM t",
      "SELECT CASE WHEN (a IS NULL) THEN 'n' ELSE b END AS c FROM t" );
    ( "WITH v AS (SELECT a FROM t) SELECT * FROM v",
      "WITH v AS (SELECT a FROM t)\nSELECT * FROM v" );
    ( "(SELECT a FROM t) UNION ALL (SELECT b FROM u)",
      "(SELECT a FROM t) UNION ALL (SELECT b FROM u)" );
    ( "SELECT a FROM (SELECT b AS a FROM u) AS v",
      "SELECT a FROM (SELECT b AS a FROM u) AS v" );
    ( "SELECT 1.5 AS x, 0.25 AS y, 'm m' AS z FROM t",
      "SELECT 1.5 AS x, 0.25 AS y, 'm m' AS z FROM t" );
    ( "SELECT a FROM t WHERE a = (SELECT max(b) FROM u WHERE u.k = t.k)",
      "SELECT a FROM t WHERE (a = (SELECT max(b) FROM u WHERE (u.k = t.k)))"
    );
    ( "SELECT a + b * c - d AS e FROM t",
      "SELECT ((a + (b * c)) - d) AS e FROM t" );
    ( "SELECT a FROM t WHERE a / 2 = 3 AND b % 2 = 1",
      "SELECT a FROM t WHERE (((a / 2) = 3) AND ((b % 2) = 1))" );
    ( "SELECT a FROM t WHERE x IS NOT NULL OR y = FALSE",
      "SELECT a FROM t WHERE ((NOT (x IS NULL)) OR (y = FALSE))" );
    ( "SELECT t.a AS x FROM t, u WHERE t.k = u.k ORDER BY x",
      "SELECT t.a AS x FROM t, u WHERE (t.k = u.k) ORDER BY x" );
    ( "SELECT a || 'z' AS s FROM t", "SELECT (a || 'z') AS s FROM t" );
    ( "SELECT a FROM t WHERE b = :host_var",
      "SELECT a FROM t WHERE (b = :host_var)" );
  ]

let test_printed_fixtures () =
  List.iter
    (fun (input, expected) ->
      let ast = parse_ok input in
      let printed = Pretty.statement_to_string ast in
      Alcotest.(check string) input expected printed;
      if parse_ok printed <> ast then
        Alcotest.failf "printed text re-parses differently: %s" printed)
    printed_fixtures

let corpus =
  [
    "SELECT 1 + 2 * 3 AS x FROM t";
    "SELECT a, b FROM t WHERE a < b AND NOT (a = 3 OR b IS NULL)";
    "SELECT * FROM t1, t2 WHERE t1.a = t2.b";
    "SELECT t.* FROM t";
    "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3";
    "SELECT a FROM t WHERE a IN (1, 2, 3)";
    "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE u.c = t.c)";
    "SELECT a FROM t WHERE EXISTS (SELECT * FROM u)";
    "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.x = t.x)";
    "SELECT a FROM t WHERE a > ALL (SELECT b FROM u)";
    "SELECT a FROM t WHERE a = ANY (SELECT b FROM u)";
    "SELECT a FROM t WHERE a = majority (SELECT b FROM u)";
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10";
    "SELECT a FROM t WHERE name LIKE 'ab%_c'";
    "SELECT a FROM t WHERE a = (SELECT max(b) FROM u)";
    "SELECT count(*), sum(a), avg(DISTINCT b) FROM t";
    "SELECT d, count(*) FROM t GROUP BY d HAVING count(*) > 2";
    "SELECT CASE WHEN a > 0 THEN 'p' WHEN a < 0 THEN 'n' ELSE 'z' END FROM t";
    "SELECT a FROM (SELECT b AS a FROM u) AS v";
    "SELECT a FROM (SELECT b FROM u) AS v (a)";
    "SELECT x FROM sample(t, 10) AS s";
    "SELECT x FROM f((SELECT a FROM t), 3) AS s";
    "SELECT a FROM t JOIN u ON t.x = u.y";
    "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y WHERE t.z > 0";
    "SELECT a FROM t RIGHT JOIN u ON t.x = u.y";
    "(SELECT a FROM t) UNION (SELECT b FROM u)";
    "(SELECT a FROM t) UNION ALL (SELECT b FROM u)";
    "(SELECT a FROM t) INTERSECT (SELECT b FROM u)";
    "(SELECT a FROM t) EXCEPT (SELECT b FROM u)";
    "SELECT x FROM ((SELECT a AS x FROM t) UNION (SELECT b FROM u)) AS w";
    "WITH v AS (SELECT a FROM t) SELECT * FROM v";
    "WITH v (x) AS (SELECT a FROM t), w AS (SELECT x FROM v) SELECT * FROM w";
    "WITH RECURSIVE r (n) AS ((SELECT a FROM t) UNION (SELECT n + 1 FROM r WHERE n < 5)) SELECT * FROM r";
    "VALUES (1, 'x'), (2, 'y')";
    "SELECT a FROM t WHERE b = :host_var";
    "INSERT INTO t (a, b) VALUES (1, 2)";
    "INSERT INTO t SELECT a, b FROM u WHERE a > 0";
    "UPDATE t SET a = a + 1, b = 'x' WHERE c < 0";
    "DELETE FROM t WHERE a IS NOT NULL";
    "CREATE TABLE t (a INT NOT NULL UNIQUE, b STRING, c FLOAT NOT NULL)";
    "CREATE TABLE t (a INT) USING fixed";
    "CREATE INDEX ix ON t (a, b) USING btree";
    "CREATE VIEW v AS SELECT a FROM t WHERE a > 0";
    "DROP TABLE t";
    "DROP VIEW v";
    "DROP INDEX ix ON t";
    "ANALYZE";
    "ANALYZE t";
    "SET rewrite = off";
    "EXPLAIN SELECT a FROM t";
    "EXPLAIN QGM SELECT a FROM t";
    "EXPLAIN PLAN SELECT a FROM t";
    "EXPLAIN DOT SELECT a FROM t";
    "SELECT a FROM t WHERE -a = -(3) AND a % 2 = 1 AND s || 'x' = 'yx'";
  ]

let test_roundtrip_corpus () = List.iter roundtrips corpus

let test_lexer () =
  let toks = Lexer.tokenize "SELECT 'it''s' , 1.5e2 :v -- comment\n /* multi \n line */ <>" in
  let kinds = List.map (fun { Lexer.tok; _ } -> tok) toks in
  Alcotest.(check bool) "tokens" true
    (kinds
    = [
        Lexer.IDENT "SELECT"; Lexer.STRING "it's"; Lexer.SYM ","; Lexer.FLOAT 150.0;
        Lexer.HOSTVAR "v"; Lexer.SYM "<>"; Lexer.EOF;
      ])

let test_lex_errors () =
  Alcotest.(check bool) "unterminated string" true
    (match Lexer.tokenize "'abc" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "unterminated comment" true
    (match Lexer.tokenize "/* abc" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (match Lexer.tokenize "a ~ b" with
    | _ -> false
    | exception Lexer.Lex_error _ -> true)

let test_parse_errors () =
  let bad =
    [
      "SELECT";
      "SELECT FROM t";
      "SELECT a FROM";
      "SELECT a FROM t WHERE";
      "SELECT a FROM t GROUP";
      "SELECT a FROM (SELECT b FROM u)";  (* missing alias *)
      "INSERT t VALUES (1)";
      "CREATE TABLE t";
      "SELECT a FROM t LIMIT x";
      "WITH v AS SELECT a FROM t SELECT * FROM v";
    ]
  in
  List.iter
    (fun text ->
      match Parser.statement text with
      | _ -> Alcotest.failf "expected parse error: %s" text
      | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> ())
    bad

let test_precedence () =
  let e q = match parse_ok ("SELECT " ^ q ^ " FROM t") with
    | Ast.Stmt_query { Ast.with_body = Ast.Select { Ast.sel_items = [ Ast.Item (e, _) ]; _ }; _ } -> e
    | _ -> Alcotest.fail "unexpected shape"
  in
  Alcotest.(check bool) "mul before add" true
    (e "1 + 2 * 3" = Ast.Bin (Ast.Add, Ast.Lit (Sb_storage.Value.Int 1),
                              Ast.Bin (Ast.Mul, Ast.Lit (Sb_storage.Value.Int 2), Ast.Lit (Sb_storage.Value.Int 3))));
  Alcotest.(check bool) "and before or" true
    (match e "a OR b AND c" with Ast.Bin (Ast.Or, _, Ast.Bin (Ast.And, _, _)) -> true | _ -> false);
  Alcotest.(check bool) "cmp before and" true
    (match e "a = 1 AND b = 2" with
    | Ast.Bin (Ast.And, Ast.Bin (Ast.Eq, _, _), Ast.Bin (Ast.Eq, _, _)) -> true
    | _ -> false)

let test_script () =
  let stmts = Parser.script "SELECT a FROM t; SELECT b FROM u; ANALYZE" in
  Alcotest.(check int) "three statements" 3 (List.length stmts)

let test_conjuncts () =
  let e = Ast.Bin (Ast.And, Ast.Bin (Ast.And, Ast.Col (None, "a"), Ast.Col (None, "b")), Ast.Col (None, "c")) in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Ast.conjuncts e))

(* --- function registry --- *)

let test_builtin_scalars () =
  let fns = Functions.create () in
  let eval name args =
    match Functions.find_scalar fns name with
    | Some f -> f.Functions.sf_eval args
    | None -> Alcotest.failf "missing builtin %s" name
  in
  Alcotest.check value_testable "abs" (i 5) (eval "abs" [ i (-5) ]);
  Alcotest.check value_testable "abs null" nul (eval "abs" [ nul ]);
  Alcotest.check value_testable "upper" (s "AB") (eval "upper" [ s "ab" ]);
  Alcotest.check value_testable "length" (i 3) (eval "length" [ s "abc" ]);
  Alcotest.check value_testable "substr" (s "bc") (eval "substr" [ s "abcd"; i 2; i 2 ]);
  Alcotest.check value_testable "substr clamp" (s "d") (eval "substr" [ s "abcd"; i 4; i 9 ]);
  Alcotest.check value_testable "coalesce" (i 2) (eval "coalesce" [ nul; i 2; i 3 ]);
  Alcotest.check value_testable "mod" (i 1) (eval "mod" [ i 7; i 3 ]);
  Alcotest.check value_testable "mod by zero" nul (eval "mod" [ i 7; i 0 ])

let test_builtin_aggregates () =
  let fns = Functions.create () in
  let run name values =
    match Functions.find_aggregate fns name with
    | Some f ->
      let inst = f.Functions.af_make () in
      List.iter inst.Functions.agg_step values;
      inst.Functions.agg_result ()
    | None -> Alcotest.failf "missing aggregate %s" name
  in
  Alcotest.check value_testable "sum int" (i 6) (run "sum" [ i 1; i 2; i 3 ]);
  Alcotest.check value_testable "sum mixed" (f 6.5) (run "sum" [ i 1; f 2.5; i 3 ]);
  Alcotest.check value_testable "sum empty" nul (run "sum" []);
  Alcotest.check value_testable "count" (i 3) (run "count" [ i 1; i 1; i 2 ]);
  Alcotest.check value_testable "avg" (f 2.0) (run "avg" [ i 1; i 2; i 3 ]);
  Alcotest.check value_testable "min" (i 1) (run "min" [ i 3; i 1; i 2 ]);
  Alcotest.check value_testable "max" (i 3) (run "max" [ i 3; i 1; i 2 ])

let test_function_typing () =
  let fns = Functions.create () in
  (match Functions.find_scalar fns "abs" with
  | Some f ->
    Alcotest.(check bool) "abs int type" true
      (f.Functions.sf_type [ Some Sb_storage.Datatype.Int ] = Ok (Some Sb_storage.Datatype.Int));
    Alcotest.(check bool) "abs string rejected" true
      (Result.is_error (f.Functions.sf_type [ Some Sb_storage.Datatype.String ]))
  | None -> Alcotest.fail "abs missing");
  Alcotest.(check bool) "aggregate detection" true (Functions.is_aggregate fns "count");
  Alcotest.(check bool) "not aggregate" false (Functions.is_aggregate fns "abs")

let suite =
  ( "hydrogen",
    [
      case "round-trip corpus" test_roundtrip_corpus;
      case "printed fixtures" test_printed_fixtures;
      case "lexer" test_lexer;
      case "lexer errors" test_lex_errors;
      case "parse errors" test_parse_errors;
      case "precedence" test_precedence;
      case "script" test_script;
      case "conjuncts" test_conjuncts;
      case "builtin scalars" test_builtin_scalars;
      case "builtin aggregates" test_builtin_aggregates;
      case "function typing" test_function_typing;
    ] )
